//! The per-shard request engine: one [`DataCache`] plus its circuit
//! breaker, deadline accounting and degraded counters.
//!
//! Both front ends drive requests through this one type — the legacy
//! single-lock [`crate::server::NodeServer`] holds a `CacheEngine`
//! behind a mutex, while the shared-nothing
//! [`crate::sharded::ShardedNodeServer`] gives each worker thread its
//! own engine outright. Because every read/write decision (breaker
//! transitions, deadline overruns, degraded pass-through, error
//! classification) lives here, the two servers are byte-identical on
//! the wire by construction.

use std::io;
use std::sync::Arc;
use std::time::Instant;

use sievestore_types::obs::{Event, EventSink, FieldValue};
use sievestore_types::{obs_count, obs_enabled, obs_observe, Micros};

use crate::backing::{BackingStore, Block};
use crate::protocol::{ErrorCode, NodeMode, Reply};
use crate::server::NodeConfig;
use crate::store::DataCache;

/// Circuit-breaker state machine.
///
/// `Closed` (healthy) counts consecutive failures; at the threshold it
/// trips to `Open` (degraded pass-through) for a fixed number of
/// requests, then `HalfOpen` lets exactly one request probe the cache
/// path: success closes the breaker, failure re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Breaker {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

impl Breaker {
    pub(crate) fn closed() -> Self {
        Breaker::Closed { failures: 0 }
    }

    pub(crate) fn open(config: &NodeConfig) -> Self {
        Breaker::Open {
            remaining: config.breaker_cooldown.max(1),
        }
    }

    pub(crate) fn mode(self) -> NodeMode {
        match self {
            Breaker::Closed { .. } => NodeMode::Healthy,
            Breaker::Open { .. } => NodeMode::Degraded,
            Breaker::HalfOpen => NodeMode::Probing,
        }
    }
}

/// Stable lowercase state names for structured breaker events.
pub(crate) fn mode_name(mode: NodeMode) -> &'static str {
    match mode {
        NodeMode::Healthy => "healthy",
        NodeMode::Degraded => "degraded",
        NodeMode::Probing => "probing",
    }
}

/// Classifies a backing-store failure for the wire. Backing hiccups are
/// transient from the client's point of view — the retry may hit a
/// healed device or the degraded path.
pub(crate) fn classify_backing(err: &io::Error) -> ErrorCode {
    match err.kind() {
        io::ErrorKind::InvalidData => ErrorCode::Fatal,
        _ => ErrorCode::Transient,
    }
}

/// A point-in-time copy of one engine's counters, merged across shards
/// at snapshot points (Stats replies, server accessors).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineSnapshot {
    pub stats: sievestore::ApplianceStats,
    pub resident_blocks: u64,
    pub degraded_reads: u64,
    pub degraded_writes: u64,
}

/// The cache plus breaker; breaker transitions are judged atomically
/// with the cache operations because one owner drives both (a mutex in
/// the legacy server, thread affinity in the sharded one).
pub(crate) struct CacheEngine<B: BackingStore> {
    pub cache: DataCache<B>,
    breaker: Breaker,
    config: NodeConfig,
    /// Destination for structured breaker-transition events. Sinks run
    /// inline on request paths, so they must be cheap and non-blocking.
    sink: Arc<dyn EventSink>,
    degraded_reads: u64,
    degraded_writes: u64,
}

impl<B: BackingStore> CacheEngine<B> {
    pub(crate) fn new(
        cache: DataCache<B>,
        config: NodeConfig,
        sink: Arc<dyn EventSink>,
        breaker: Breaker,
    ) -> Self {
        CacheEngine {
            cache,
            breaker,
            config,
            sink,
            degraded_reads: 0,
            degraded_writes: 0,
        }
    }

    pub(crate) fn mode(&self) -> NodeMode {
        self.breaker.mode()
    }

    pub(crate) fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    pub(crate) fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            stats: *self.cache.stats(),
            resident_blocks: self.cache.resident_blocks() as u64,
            degraded_reads: self.degraded_reads,
            degraded_writes: self.degraded_writes,
        }
    }

    /// Serves one read, instrumented; never panics the connection over
    /// a backing failure — errors become typed `0xFF` replies.
    pub(crate) fn handle_read(&mut self, key: u64, now: Micros) -> Reply {
        let observed = obs_enabled!().then(Instant::now);
        let reply = self.handle_read_inner(key, now);
        obs_count!(NodeReads, 1);
        if let Some(started) = observed {
            obs_observe!(NodeReadNanos, started.elapsed().as_nanos() as u64);
        }
        reply
    }

    fn handle_read_inner(&mut self, key: u64, now: Micros) -> Reply {
        match self.breaker.mode() {
            NodeMode::Degraded => {
                self.tick_degraded();
                match self.cache.read_bypass(key) {
                    Ok(data) => {
                        self.degraded_reads += 1;
                        obs_count!(NodeDegraded, 1);
                        Reply::Read {
                            hit: false,
                            data: Box::new(data),
                        }
                    }
                    Err(e) => Reply::Error {
                        code: classify_backing(&e),
                        message: format!("degraded read failed: {e}"),
                    },
                }
            }
            NodeMode::Healthy | NodeMode::Probing => {
                let started = Instant::now();
                match self.cache.read(key, now) {
                    Ok((data, outcome)) => {
                        if started.elapsed() > self.config.request_deadline {
                            self.record_failure();
                            obs_count!(NodeDeadlineOverruns, 1);
                            return Reply::Error {
                                code: ErrorCode::Deadline,
                                message: format!(
                                    "read of block {key} overran the {:?} deadline",
                                    self.config.request_deadline
                                ),
                            };
                        }
                        self.record_success();
                        Reply::Read {
                            hit: outcome.hit,
                            data: Box::new(data),
                        }
                    }
                    Err(e) => {
                        self.record_failure();
                        Reply::Error {
                            code: classify_backing(&e),
                            message: format!("backing read failed: {e}"),
                        }
                    }
                }
            }
        }
    }

    /// Serves one write, instrumented; mirrors [`Self::handle_read`].
    pub(crate) fn handle_write(&mut self, key: u64, data: &Block, now: Micros) -> Reply {
        let observed = obs_enabled!().then(Instant::now);
        let reply = self.handle_write_inner(key, data, now);
        obs_count!(NodeWrites, 1);
        if let Some(started) = observed {
            obs_observe!(NodeWriteNanos, started.elapsed().as_nanos() as u64);
        }
        reply
    }

    fn handle_write_inner(&mut self, key: u64, data: &Block, now: Micros) -> Reply {
        match self.breaker.mode() {
            NodeMode::Degraded => {
                self.tick_degraded();
                match self.cache.write_bypass(key, data) {
                    Ok(()) => {
                        self.degraded_writes += 1;
                        obs_count!(NodeDegraded, 1);
                        Reply::Write { hit: false }
                    }
                    Err(e) => Reply::Error {
                        code: classify_backing(&e),
                        message: format!("degraded write failed: {e}"),
                    },
                }
            }
            NodeMode::Healthy | NodeMode::Probing => {
                let started = Instant::now();
                match self.cache.write(key, data, now) {
                    Ok(outcome) => {
                        if started.elapsed() > self.config.request_deadline {
                            self.record_failure();
                            obs_count!(NodeDeadlineOverruns, 1);
                            return Reply::Error {
                                code: ErrorCode::Deadline,
                                message: format!(
                                    "write of block {key} overran the {:?} deadline",
                                    self.config.request_deadline
                                ),
                            };
                        }
                        self.record_success();
                        Reply::Write { hit: outcome.hit }
                    }
                    Err(e) => {
                        self.record_failure();
                        Reply::Error {
                            code: classify_backing(&e),
                            message: format!("backing write failed: {e}"),
                        }
                    }
                }
            }
        }
    }

    /// Serves a Flush request against this engine's slice.
    pub(crate) fn handle_flush(&mut self) -> Reply {
        match self.cache.flush() {
            Ok(flushed) => Reply::Flush { flushed },
            Err(e) => Reply::Error {
                code: classify_backing(&e),
                message: format!("flush failed: {e}"),
            },
        }
    }

    /// Records a cache-path success; a successful probe (or a healthy
    /// request) closes the breaker.
    pub(crate) fn record_success(&mut self) {
        let from = self.breaker;
        self.breaker = Breaker::Closed { failures: 0 };
        self.on_transition(from);
    }

    /// Records a cache-path failure; at the threshold the breaker opens
    /// and dirty frames are flushed best-effort while the backing store
    /// may still be reachable.
    pub(crate) fn record_failure(&mut self) {
        let from = self.breaker;
        let failures = match self.breaker {
            Breaker::Closed { failures } => failures + 1,
            // A failed probe re-opens immediately.
            Breaker::HalfOpen => self.config.breaker_threshold,
            Breaker::Open { remaining } => {
                self.breaker = Breaker::Open { remaining };
                return;
            }
        };
        if failures >= self.config.breaker_threshold.max(1) {
            self.breaker = Breaker::Open {
                remaining: self.config.breaker_cooldown.max(1),
            };
            // Entering degraded mode: try to get dirty data to safety
            // while (or in case) the backing store still responds.
            self.flush_round("breaker_open");
        } else {
            self.breaker = Breaker::Closed { failures };
        }
        self.on_transition(from);
    }

    /// Consumes one degraded-mode request; at zero the breaker
    /// half-opens so the next request probes the cache path.
    pub(crate) fn tick_degraded(&mut self) {
        if let Breaker::Open { remaining } = self.breaker {
            let from = self.breaker;
            let remaining = remaining.saturating_sub(1);
            self.breaker = if remaining == 0 {
                Breaker::HalfOpen
            } else {
                Breaker::Open { remaining }
            };
            self.on_transition(from);
        }
    }

    /// Runs one best-effort flush round, surfacing what a silent swallow
    /// would hide: frames still dirty after the round are counted
    /// (`node_flush_failures`) and reported as one structured
    /// `node.flush.failed` event per round. Returns how many frames
    /// remain dirty.
    pub(crate) fn flush_round(&mut self, context: &'static str) -> u64 {
        let (flushed, still_dirty) = self.cache.flush_best_effort();
        if still_dirty > 0 {
            obs_count!(NodeFlushFailures, still_dirty);
            self.sink.record(
                &Event::new("node.flush.failed")
                    .with("context", FieldValue::Str(context))
                    .with("flushed", FieldValue::U64(flushed))
                    .with("still_dirty", FieldValue::U64(still_dirty)),
            );
        }
        still_dirty
    }

    /// Shutdown sequence for this engine: bounded flush retries, then a
    /// clean durable shutdown mark. Best-effort throughout — a dead
    /// backing must not hang or panic the caller.
    pub(crate) fn shutdown_flush(&mut self, retries: u32) {
        for _ in 0..=retries {
            if self.flush_round("shutdown") == 0 {
                break;
            }
        }
        // Mark the durable journal cleanly shut down so the next open
        // recovers warm. Best-effort: on failure the next recovery is
        // merely colder (clean frames dropped), never incorrect.
        let _ = self.cache.shutdown_durable();
    }

    /// One bounded scrub pass; quarantined frames are reported.
    pub(crate) fn scrub_pass(&mut self, batch: u32) {
        let pass = self.cache.scrub(batch);
        if !pass.quarantined.is_empty() {
            self.sink.record(
                &Event::new("node.scrub.quarantined")
                    .with("frames", FieldValue::U64(pass.quarantined.len() as u64)),
            );
        }
    }

    /// Emits exactly one structured event per *mode* change (internal
    /// state updates that keep the mode, like a failure streak growing
    /// under threshold or the cooldown counting down, stay silent).
    fn on_transition(&self, from: Breaker) {
        let to = self.breaker;
        if from.mode() == to.mode() {
            return;
        }
        if to.mode() == NodeMode::Degraded {
            obs_count!(NodeBreakerTrips, 1);
        }
        if to.mode() == NodeMode::Healthy {
            obs_count!(NodeBreakerRecoveries, 1);
        }
        self.sink.record(
            &Event::new("node.breaker.transition")
                .with("from", FieldValue::Str(mode_name(from.mode())))
                .with("to", FieldValue::Str(mode_name(to.mode()))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use sievestore_types::obs::NoopSink;

    fn engine_with(config: NodeConfig, sink: Arc<dyn EventSink>) -> CacheEngine<MemBacking> {
        CacheEngine::new(
            DataCache::new(MemBacking::new(), sievestore::PolicySpec::Aod, 8).expect("valid cache"),
            config,
            sink,
            Breaker::closed(),
        )
    }

    #[test]
    fn breaker_opens_at_threshold_and_recovers_through_probe() {
        let config = NodeConfig {
            breaker_threshold: 3,
            breaker_cooldown: 2,
            ..NodeConfig::default()
        };
        let mut g = engine_with(config, Arc::new(NoopSink));
        assert_eq!(g.mode(), NodeMode::Healthy);
        // Two failures stay closed; the third opens.
        g.record_failure();
        g.record_failure();
        assert_eq!(g.mode(), NodeMode::Healthy);
        g.record_failure();
        assert_eq!(g.mode(), NodeMode::Degraded);
        // Cooldown drains per degraded request, then half-open.
        g.tick_degraded();
        assert_eq!(g.mode(), NodeMode::Degraded);
        g.tick_degraded();
        assert_eq!(g.mode(), NodeMode::Probing);
        // A successful probe closes the breaker.
        g.record_success();
        assert_eq!(g.mode(), NodeMode::Healthy);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let config = NodeConfig {
            breaker_threshold: 1,
            breaker_cooldown: 1,
            ..NodeConfig::default()
        };
        let mut g = engine_with(config, Arc::new(NoopSink));
        g.record_failure();
        assert_eq!(g.mode(), NodeMode::Degraded);
        g.tick_degraded();
        assert_eq!(g.mode(), NodeMode::Probing);
        g.record_failure();
        assert_eq!(g.mode(), NodeMode::Degraded);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let config = NodeConfig {
            breaker_threshold: 2,
            ..NodeConfig::default()
        };
        let mut g = engine_with(config, Arc::new(NoopSink));
        g.record_failure();
        g.record_success();
        g.record_failure();
        // Never two *consecutive* failures, so still healthy.
        assert_eq!(g.mode(), NodeMode::Healthy);
    }

    #[test]
    fn breaker_emits_exactly_one_event_per_mode_transition() {
        use sievestore_types::obs::CapturingSink;
        let sink = Arc::new(CapturingSink::new());
        let config = NodeConfig {
            breaker_threshold: 2,
            breaker_cooldown: 1,
            ..NodeConfig::default()
        };
        let mut g = engine_with(config, sink.clone());
        // Sub-threshold failure and already-closed success: no events.
        g.record_failure();
        g.record_success();
        g.record_success();
        assert!(sink.events().is_empty(), "mode never changed");
        // Trip: healthy -> degraded (two consecutive failures).
        g.record_failure();
        g.record_failure();
        // Cooldown: degraded -> probing, then probe success -> healthy.
        g.tick_degraded();
        g.record_success();
        let events = sink.take();
        let transitions: Vec<(String, String)> = events
            .iter()
            .map(|e| {
                (
                    e.field("from").expect("from").to_string(),
                    e.field("to").expect("to").to_string(),
                )
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                ("healthy".into(), "degraded".into()),
                ("degraded".into(), "probing".into()),
                ("probing".into(), "healthy".into()),
            ]
        );
        assert!(events.iter().all(|e| e.name == "node.breaker.transition"));
    }

    #[test]
    fn backing_errors_classify_as_transient_for_clients() {
        let hiccup = io::Error::other("injected fault");
        assert_eq!(classify_backing(&hiccup), ErrorCode::Transient);
        let corrupt = io::Error::new(io::ErrorKind::InvalidData, "bad block");
        assert_eq!(classify_backing(&corrupt), ErrorCode::Fatal);
    }
}
