//! End-to-end demo of the crash-consistent durable cache tier.
//!
//! Spawns a durable write-back [`NodeServer`] over a real TCP socket
//! and an on-disk frame store, then walks the recovery surface: a
//! fresh format, a warm restart after clean shutdown, and a restart
//! over bit-rotted media showing the quarantine path (a corrupt frame
//! is never served — the read falls back to the backing store).
//!
//! ```sh
//! cargo run --release -p sievestore-node --example durable_demo
//! ```

use std::sync::Arc;

use sievestore::PolicySpec;
use sievestore_node::durable::{FILE_HEADER_LEN, FRAME_HEADER_LEN, FRAME_RECORD_LEN};
use sievestore_node::{
    DurableMediaSet, MemBacking, NodeClient, NodeServer, NodeServerBuilder, RecoveryReport,
    WritePolicy,
};
use sievestore_types::obs::CapturingSink;

const FRAMES: u64 = 4;

fn spawn(
    dir: &std::path::Path,
) -> std::io::Result<(NodeServer<MemBacking>, Option<RecoveryReport>)> {
    NodeServerBuilder::new("127.0.0.1:0")
        .sink(Arc::new(CapturingSink::new()))
        .serve_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            64,
            WritePolicy::WriteBack,
            DurableMediaSet::open_dir(dir)?,
        )
}

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("sievestore-durable-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Fresh media: the open formats the segment + journals.
    let (server, report) = spawn(&dir)?;
    let report = report.expect("fresh media formats cleanly");
    println!(
        "[fresh]   formatted new media: recovered {} frames",
        report.recovered
    );

    let mut client = NodeClient::connect(server.addr())?;
    for key in 0..FRAMES {
        client.write_block(key, &[0x40 + key as u8; 512])?;
    }
    let (data, hit) = client.read_block(0)?;
    println!(
        "[workload] wrote {FRAMES} write-back frames; read key 0 -> first byte {:#04x}, hit={hit}",
        data[0]
    );
    client.quit()?;
    server.shutdown();

    // Clean restart: the journal ends with a shutdown marker, so the
    // whole resident set comes back warm.
    let (server, report) = spawn(&dir)?;
    let report = report.expect("media recovers");
    println!(
        "[restart] clean shutdown -> recovered {} warm, quarantined {}, clean_shutdown={}",
        report.recovered, report.quarantined, report.clean_shutdown
    );
    let mut client = NodeClient::connect(server.addr())?;
    let (data, hit) = client.read_block(2)?;
    println!(
        "[warm]    read key 2 -> first byte {:#04x}, hit={hit} (served from the durable tier)",
        data[0]
    );
    client.quit()?;
    server.shutdown();

    // Bit rot: flip one payload bit in slot 0 of the segment file.
    // Recovery checksums every journaled frame and quarantines the
    // mismatch instead of ever serving it.
    let seg_path = dir.join("frames.seg");
    let mut seg = std::fs::read(&seg_path)?;
    let payload0 = FILE_HEADER_LEN + FRAME_HEADER_LEN + 100;
    seg[payload0] ^= 0x01;
    std::fs::write(&seg_path, &seg)?;
    println!("[bit rot] flipped one payload bit in segment slot 0 (record len {FRAME_RECORD_LEN})");

    let (server, report) = spawn(&dir)?;
    let report = report.expect("media recovers");
    println!(
        "[restart] recovered {} warm, quarantined {} (checksum mismatch, never served)",
        report.recovered, report.quarantined
    );
    let mut client = NodeClient::connect(server.addr())?;
    let mut warm = 0u64;
    let mut fallback = 0u64;
    for key in 0..FRAMES {
        let (_, hit) = client.read_block(key)?;
        if hit {
            warm += 1;
        } else {
            fallback += 1;
        }
    }
    println!("[reads]   {warm} warm hits, {fallback} fell back to the backing store");
    client.quit()?;
    server.shutdown();

    std::fs::remove_dir_all(&dir).ok();
    println!("durable demo complete");
    Ok(())
}
