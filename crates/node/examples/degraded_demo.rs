//! End-to-end demo of the resilient node I/O path.
//!
//! Spawns a [`NodeServer`] over a fault-injecting in-memory backing and
//! walks it through the full health cycle over a real TCP socket:
//! healthy operation, a transient fault absorbed by client retries, a
//! sustained fault burst that trips the circuit breaker into degraded
//! pass-through mode, and probe-back recovery. Finishes with raw-socket
//! probes showing the wire-level `0xFF` error replies.
//!
//! ```sh
//! cargo run --release -p sievestore-node --example degraded_demo
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sievestore::PolicySpec;
use sievestore_node::{
    ClientConfig, DataCache, FaultInjectingBacking, FaultPlan, MemBacking, NodeClient, NodeConfig,
    NodeServerBuilder, RetryPolicy,
};

fn main() -> std::io::Result<()> {
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0xDE30));
    let handle = backing.handle();
    let cache = DataCache::new(backing, PolicySpec::Aod, 64).expect("valid appliance");

    let config = NodeConfig {
        breaker_threshold: 3,
        breaker_cooldown: 4,
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)?;
    let addr = server.addr();
    println!("node listening on {addr} (breaker: threshold 3, cooldown 4)");

    let client_config = ClientConfig {
        retry: RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        },
        ..ClientConfig::default()
    };
    let mut client = NodeClient::connect_with(addr, client_config)?;

    // Healthy path.
    client.write_block(1, &[0x11; 512])?;
    let (data, hit) = client.read_block(1)?;
    println!(
        "[healthy]  read key 1 -> first byte {:#04x}, hit={hit}",
        data[0]
    );

    // One transient fault: the client retries and succeeds in place.
    handle.fail_next(1);
    let (data, _) = client.read_block(2)?;
    println!(
        "[transient] read key 2 -> first byte {:#04x} after {} retry(ies), mode {:?}",
        data[0],
        client.retries(),
        client.stats()?.mode
    );

    // Sustained faults: three consecutive failures trip the breaker.
    handle.fail_next(3);
    let (data, _) = client.read_block(3)?;
    let stats = client.stats()?;
    println!(
        "[degraded]  read key 3 -> first byte {:#04x}; mode {:?}, degraded_reads {}",
        data[0], stats.mode, stats.degraded_reads
    );

    // Degraded pass-through still serves correct data straight off the
    // (healed) ensemble, without touching the policy.
    let (data, _) = client.read_block(1)?;
    client.write_block(4, &[0x44; 512])?;
    let stats = client.stats()?;
    println!(
        "[degraded]  read key 1 -> {:#04x}; write key 4 ok; degraded_reads {}, degraded_writes {}, mode {:?}",
        data[0], stats.degraded_reads, stats.degraded_writes, stats.mode
    );

    // Cooldown spent: the next request probes the cache path and,
    // finding the backing healthy, closes the breaker.
    let _ = client.read_block(1)?;
    let (data, _) = client.read_block(1)?;
    let stats = client.stats()?;
    println!(
        "[recovered] read key 1 -> first byte {:#04x}; mode {:?}, injected errors so far {}",
        data[0],
        stats.mode,
        handle.injected_errors()
    );

    client.quit()?;

    // Wire-level probes: speak raw bytes to the socket and show the
    // typed 0xFF error replies a misbehaving client receives.
    println!("--- raw-socket probes ---");
    probe_raw(addr, b"\x03\x00\x00\x00abc", "garbage 3-byte frame")?;
    probe_raw(addr, b"\xff\xff\xff\xffx", "oversized length prefix")?;

    server.shutdown();
    println!("server shut down cleanly");
    Ok(())
}

/// Send raw bytes, print the (possibly error) reply frame.
fn probe_raw(addr: std::net::SocketAddr, bytes: &[u8], label: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(bytes)?;
    let mut reply = Vec::new();
    match stream.read_to_end(&mut reply) {
        Ok(_) => {}
        Err(e) => println!("[probe] {label} -> read error: {e}"),
    }
    if reply.len() >= 6 && reply[4] == 0xFF {
        let code = reply[5];
        let msg = String::from_utf8_lossy(&reply[6..]);
        println!("[probe] {label} -> 0xFF error reply, code {code:#04x}, message {msg:?}");
    } else {
        println!("[probe] {label} -> reply bytes {reply:?}");
    }
    Ok(())
}
