//! The SieveStore appliance: a policy-driven, ensemble-level block cache.
//!
//! [`SieveStore`] is the deployable unit the paper sketches — a transparent
//! box that sits in front of a storage ensemble, absorbs block accesses,
//! and serves the sieved hot set from solid-state media. It combines an
//! [`AllocationPolicy`] with the matching cache organization (LRU for
//! continuous policies, epoch-batched for discrete ones) and keeps running
//! totals of hits, bypasses and allocation-writes.
//!
//! # Examples
//!
//! ```
//! use sievestore::{PolicySpec, SieveStoreBuilder};
//! use sievestore_types::{Micros, RequestKind};
//!
//! # fn main() -> Result<(), sievestore_types::SieveError> {
//! let mut store = SieveStoreBuilder::new()
//!     .capacity_blocks(1024)
//!     .policy(PolicySpec::Aod)
//!     .build()?;
//!
//! let t = Micros::from_secs(1);
//! let first = store.access(42, RequestKind::Read, t);
//! assert!(first.is_miss());
//! let second = store.access(42, RequestKind::Read, t);
//! assert!(second.is_hit());
//! # Ok(())
//! # }
//! ```

use sievestore_cache::{BatchCache, EpochTransition, EvictionPolicy, LruCache, SieveCache};
use sievestore_extsort::CountingConfig;
use sievestore_sieve::TwoTierConfig;
use sievestore_types::{Day, Micros, RequestKind, SieveError};

use crate::policy::{
    AllocationPolicy, Aod, IdealTop1, MissDecision, RandSieveBlkD, RandSieveC, SieveStoreC,
    SieveStoreD, Wmna,
};

/// What happened to one block access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident; served from the SSD.
    Hit,
    /// The block missed and the policy declined to allocate.
    BypassMiss,
    /// The block missed and was allocated (an allocation-write), possibly
    /// evicting another block.
    AllocatedMiss {
        /// The block evicted to make room, if the cache was full.
        evicted: Option<u64>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether the access missed (bypassed or allocated).
    pub const fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// Whether the access triggered an allocation-write.
    pub const fn is_allocation(self) -> bool {
        matches!(self, AccessOutcome::AllocatedMiss { .. })
    }
}

/// Running totals kept by the appliance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplianceStats {
    /// Read hits (served from the SSD).
    pub read_hits: u64,
    /// Write hits (written to the SSD).
    pub write_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Allocation-writes performed.
    pub allocation_writes: u64,
    /// Blocks moved in by epoch installations (discrete policies).
    pub batch_allocations: u64,
}

impl ApplianceStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.write_hits + self.read_misses + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Hit ratio over all accesses (0 when nothing was accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// Declarative policy selection for [`SieveStoreBuilder`].
#[derive(Debug, Clone)]
pub enum PolicySpec {
    /// Allocate-on-demand (unsieved).
    Aod,
    /// Write-miss-no-allocate (unsieved).
    Wmna,
    /// SieveStore-C with the given two-tier sieve parameters.
    SieveStoreC(TwoTierConfig),
    /// SieveStore-D with the given per-epoch access-count threshold.
    SieveStoreD {
        /// Allocation threshold `t` (the paper uses 10).
        threshold: u64,
    },
    /// RandSieve-C: allocate each miss with this probability.
    RandSieveC {
        /// Admission probability (the paper uses 0.01).
        probability: f64,
        /// RNG seed.
        seed: u64,
    },
    /// RandSieve-BlkD: batch-install a random fraction of each day's
    /// accessed blocks.
    RandSieveBlkD {
        /// Selection fraction (the paper uses 0.01).
        fraction: f64,
        /// RNG seed.
        seed: u64,
    },
    /// The clairvoyant per-day oracle, with precomputed selections.
    IdealTop1 {
        /// Day-indexed block selections.
        selections: Vec<Vec<u64>>,
    },
}

impl PolicySpec {
    /// The report name of the policy this spec builds.
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Aod => "AOD",
            PolicySpec::Wmna => "WMNA",
            PolicySpec::SieveStoreC(_) => "SieveStore-C",
            PolicySpec::SieveStoreD { .. } => "SieveStore-D",
            PolicySpec::RandSieveC { .. } => "RandSieve-C",
            PolicySpec::RandSieveBlkD { .. } => "RandSieve-BlkD",
            PolicySpec::IdealTop1 { .. } => "Ideal",
        }
    }

    /// Whether this spec builds a discrete (epoch-batched) policy.
    pub fn is_discrete(&self) -> bool {
        matches!(
            self,
            PolicySpec::SieveStoreD { .. }
                | PolicySpec::RandSieveBlkD { .. }
                | PolicySpec::IdealTop1 { .. }
        )
    }

    /// Builds the policy with an explicit epoch-counting backend for
    /// SieveStore-D (other policies ignore it).
    fn build_with_counting(
        self,
        counting: &CountingConfig,
    ) -> Result<Box<dyn AllocationPolicy + Send>, SieveError> {
        Ok(match self {
            PolicySpec::Aod => Box::new(Aod::new()),
            PolicySpec::Wmna => Box::new(Wmna::new()),
            PolicySpec::SieveStoreC(cfg) => Box::new(SieveStoreC::new(cfg)?),
            PolicySpec::SieveStoreD { threshold } => {
                Box::new(SieveStoreD::with_counting(threshold, counting.clone())?)
            }
            PolicySpec::RandSieveC { probability, seed } => {
                Box::new(RandSieveC::new(probability, seed)?)
            }
            PolicySpec::RandSieveBlkD { fraction, seed } => {
                Box::new(RandSieveBlkD::new(fraction, seed)?)
            }
            PolicySpec::IdealTop1 { selections } => Box::new(IdealTop1::new(selections)),
        })
    }

    /// Builds shard `shard` of a continuous policy split across `shards`
    /// hash-partitioned replay workers. AOD/WMNA are stateless per key
    /// and build unchanged; SieveStore-C builds with a sliced IMCT;
    /// RandSieve-C reseeds per shard (shard 0 keeps the original seed so
    /// a one-shard run is identical to the sequential policy).
    ///
    /// Discrete policies cannot be built per shard — their epoch batch
    /// cache is a global structure the replay engine synchronizes at day
    /// boundaries instead.
    fn build_sharded(
        self,
        shard: usize,
        shards: usize,
    ) -> Result<Box<dyn AllocationPolicy + Send>, SieveError> {
        if shard >= shards {
            return Err(SieveError::InvalidConfig(format!(
                "shard index {shard} out of range for {shards} shards"
            )));
        }
        Ok(match self {
            PolicySpec::Aod => Box::new(Aod::new()),
            PolicySpec::Wmna => Box::new(Wmna::new()),
            PolicySpec::SieveStoreC(cfg) => Box::new(SieveStoreC::for_shard(cfg, shard, shards)?),
            PolicySpec::RandSieveC { probability, seed } => {
                let seed = if shard == 0 {
                    seed
                } else {
                    seed ^ sievestore_types::mix64(shard as u64)
                };
                Box::new(RandSieveC::new(probability, seed)?)
            }
            discrete => {
                return Err(SieveError::InvalidConfig(format!(
                    "discrete policy {} cannot be built per shard; \
                     the replay engine batches it at epoch boundaries",
                    discrete.name()
                )))
            }
        })
    }
}

/// Builder for [`SieveStore`].
#[derive(Debug)]
pub struct SieveStoreBuilder {
    capacity_blocks: usize,
    policy: PolicySpec,
    eviction: EvictionPolicy,
    sharding: Option<(usize, usize)>,
    counting: CountingConfig,
}

impl SieveStoreBuilder {
    /// Starts a builder with a 16 GB-equivalent cache, SieveStore-C
    /// paper defaults, and LRU eviction.
    pub fn new() -> Self {
        SieveStoreBuilder {
            capacity_blocks: sievestore_types::gib_to_blocks(16) as usize,
            policy: PolicySpec::SieveStoreC(TwoTierConfig::paper_default()),
            eviction: EvictionPolicy::default(),
            sharding: None,
            counting: CountingConfig::InMemory,
        }
    }

    /// Sets the cache capacity in 512-byte frames.
    ///
    /// Under [`SieveStoreBuilder::shard`], this is the *total* capacity
    /// of the logical cache; the built shard receives its even split
    /// (remainder frames go to the lowest-numbered shards).
    #[must_use]
    pub fn capacity_blocks(mut self, blocks: usize) -> Self {
        self.capacity_blocks = blocks;
        self
    }

    /// Sets the allocation policy.
    #[must_use]
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the block-cache eviction policy for continuous allocation
    /// policies (LRU by default, or SIEVE for the lock-free hit path).
    /// Discrete policies use the epoch-batched cache regardless.
    #[must_use]
    pub fn eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Sets the epoch-counting backend SieveStore-D runs over (in-memory
    /// by default; spill-to-disk for epochs whose distinct-key population
    /// exceeds RAM). Other policies ignore it.
    #[must_use]
    pub fn counting(mut self, counting: CountingConfig) -> Self {
        self.counting = counting;
        self
    }

    /// Builds the appliance as shard `shard` of `shards` hash-partitioned
    /// replay workers: the policy's metastate is sliced to the shard's
    /// key partition and the capacity is split evenly. Only continuous
    /// policies support this (discrete policies batch globally at epoch
    /// boundaries instead — the replay engine handles them separately).
    #[must_use]
    pub fn shard(mut self, shard: usize, shards: usize) -> Self {
        self.sharding = Some((shard, shards));
        self
    }

    /// Builds the appliance.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for a zero capacity, an
    /// invalid policy configuration, or an unsatisfiable shard split.
    pub fn build(self) -> Result<SieveStore, SieveError> {
        if self.capacity_blocks == 0 {
            return Err(SieveError::InvalidConfig(
                "cache capacity must be nonzero".into(),
            ));
        }
        let (policy, capacity) = match self.sharding {
            None => (
                self.policy.build_with_counting(&self.counting)?,
                self.capacity_blocks,
            ),
            Some((shard, shards)) => {
                if shards == 0 {
                    return Err(SieveError::InvalidConfig("shard count must be > 0".into()));
                }
                let base = self.capacity_blocks / shards;
                let extra = usize::from(shard < self.capacity_blocks % shards);
                (
                    self.policy.build_sharded(shard, shards)?,
                    (base + extra).max(1),
                )
            }
        };
        let cache = if policy.is_discrete() {
            CacheKind::Batch(BatchCache::new(capacity))
        } else {
            match self.eviction {
                EvictionPolicy::Lru => CacheKind::Lru(LruCache::new(capacity)),
                EvictionPolicy::Sieve => CacheKind::Sieve(SieveCache::new(capacity)),
            }
        };
        Ok(SieveStore {
            cache,
            policy,
            stats: ApplianceStats::default(),
        })
    }
}

impl Default for SieveStoreBuilder {
    fn default() -> Self {
        SieveStoreBuilder::new()
    }
}

#[derive(Debug)]
enum CacheKind {
    Lru(LruCache),
    Sieve(SieveCache),
    Batch(BatchCache),
}

/// The SieveStore appliance. See the [module docs](self) for an example.
pub struct SieveStore {
    cache: CacheKind,
    policy: Box<dyn AllocationPolicy + Send>,
    stats: ApplianceStats,
}

impl std::fmt::Debug for SieveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SieveStore")
            .field("policy", &self.policy.name())
            .field("capacity", &self.capacity_blocks())
            .field("resident", &self.len_blocks())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SieveStore {
    /// Processes one 512-byte block access.
    pub fn access(&mut self, key: u64, kind: RequestKind, now: Micros) -> AccessOutcome {
        self.policy.on_access(key, kind, now);
        let hit = match &mut self.cache {
            CacheKind::Lru(c) => c.touch(key),
            CacheKind::Sieve(c) => c.touch(key),
            CacheKind::Batch(c) => c.contains(key),
        };
        if hit {
            self.policy.on_hit(key, kind, now);
            match kind {
                RequestKind::Read => self.stats.read_hits += 1,
                RequestKind::Write => self.stats.write_hits += 1,
            }
            return AccessOutcome::Hit;
        }
        match kind {
            RequestKind::Read => self.stats.read_misses += 1,
            RequestKind::Write => self.stats.write_misses += 1,
        }
        match self.policy.on_miss(key, kind, now) {
            MissDecision::Bypass => AccessOutcome::BypassMiss,
            MissDecision::Allocate => {
                self.stats.allocation_writes += 1;
                let evicted = match &mut self.cache {
                    CacheKind::Lru(c) => c.insert(key),
                    CacheKind::Sieve(c) => c.insert(key),
                    // Discrete policies never reach here (they always
                    // bypass), but allocate-into-batch is well-defined:
                    // treat it as an epoch-local install.
                    CacheKind::Batch(_) => None,
                };
                AccessOutcome::AllocatedMiss { evicted }
            }
        }
    }

    /// Signals the start of calendar day `day`. Discrete policies install
    /// their batch selection; the returned transition reports the moves
    /// (allocation-writes for newly installed blocks are added to the
    /// stats).
    pub fn day_boundary(&mut self, day: Day) -> Option<EpochTransition> {
        let selection = self.policy.on_day_boundary(day)?;
        match &mut self.cache {
            CacheKind::Batch(c) => {
                let transition = c.install_epoch(selection);
                self.stats.batch_allocations += transition.allocated.len() as u64;
                self.stats.allocation_writes += transition.allocated.len() as u64;
                Some(transition)
            }
            CacheKind::Lru(_) | CacheKind::Sieve(_) => None,
        }
    }

    /// Installs `keys` as resident without consulting the policy or
    /// touching the stats — crash recovery rebuilding a warm cache from
    /// durable media. Keys beyond capacity may be dropped or evict
    /// earlier ones (recovering into a smaller cache than the one that
    /// crashed); callers should re-check [`SieveStore::contains`] for
    /// each key afterwards.
    ///
    /// LRU caches insert in iteration order (later keys end up more
    /// recently used); epoch-batched caches install the set as the
    /// current epoch's selection.
    pub fn warm(&mut self, keys: impl IntoIterator<Item = u64>) {
        match &mut self.cache {
            CacheKind::Lru(c) => {
                for key in keys {
                    if !c.contains(key) {
                        c.insert(key);
                    }
                }
            }
            CacheKind::Sieve(c) => {
                for key in keys {
                    if !c.contains(key) {
                        c.insert(key);
                    }
                }
            }
            CacheKind::Batch(c) => {
                c.install_epoch(keys);
            }
        }
    }

    /// The policy's report name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Whether the appliance uses epoch-batched caching.
    pub fn is_discrete(&self) -> bool {
        self.policy.is_discrete()
    }

    /// Cache capacity in 512-byte frames.
    pub fn capacity_blocks(&self) -> usize {
        match &self.cache {
            CacheKind::Lru(c) => c.capacity(),
            CacheKind::Sieve(c) => c.capacity(),
            CacheKind::Batch(c) => c.capacity(),
        }
    }

    /// Currently resident frames.
    pub fn len_blocks(&self) -> usize {
        match &self.cache {
            CacheKind::Lru(c) => c.len(),
            CacheKind::Sieve(c) => c.len(),
            CacheKind::Batch(c) => c.len(),
        }
    }

    /// Whether a block is resident (no recency side effects).
    pub fn contains(&self, key: u64) -> bool {
        match &self.cache {
            CacheKind::Lru(c) => c.contains(key),
            CacheKind::Sieve(c) => c.contains(key),
            CacheKind::Batch(c) => c.contains(key),
        }
    }

    /// Running totals.
    pub fn stats(&self) -> &ApplianceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Micros {
        Micros::from_hours(1)
    }

    fn build(policy: PolicySpec, capacity: usize) -> SieveStore {
        SieveStoreBuilder::new()
            .capacity_blocks(capacity)
            .policy(policy)
            .build()
            .expect("valid appliance config")
    }

    #[test]
    fn builder_rejects_zero_capacity() {
        assert!(SieveStoreBuilder::new().capacity_blocks(0).build().is_err());
    }

    #[test]
    fn aod_appliance_hits_after_allocation() {
        let mut store = build(PolicySpec::Aod, 8);
        assert_eq!(
            store.access(1, RequestKind::Read, t()),
            AccessOutcome::AllocatedMiss { evicted: None }
        );
        assert_eq!(store.access(1, RequestKind::Read, t()), AccessOutcome::Hit);
        let s = store.stats();
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.allocation_writes, 1);
        assert_eq!(s.accesses(), 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aod_eviction_is_reported() {
        let mut store = build(PolicySpec::Aod, 1);
        store.access(1, RequestKind::Read, t());
        let outcome = store.access(2, RequestKind::Read, t());
        assert_eq!(outcome, AccessOutcome::AllocatedMiss { evicted: Some(1) });
        assert!(!store.contains(1));
    }

    #[test]
    fn wmna_bypasses_write_misses() {
        let mut store = build(PolicySpec::Wmna, 8);
        assert_eq!(
            store.access(1, RequestKind::Write, t()),
            AccessOutcome::BypassMiss
        );
        assert!(!store.contains(1));
        assert!(store.access(1, RequestKind::Read, t()).is_allocation());
        // A write to a resident block is a write hit.
        assert_eq!(store.access(1, RequestKind::Write, t()), AccessOutcome::Hit);
        assert_eq!(store.stats().write_hits, 1);
    }

    #[test]
    fn sievestore_d_day_cycle() {
        let mut store = build(PolicySpec::SieveStoreD { threshold: 3 }, 16);
        assert!(store.is_discrete());
        // Day 0: all misses bypass, but accesses are counted.
        for _ in 0..3 {
            assert_eq!(
                store.access(7, RequestKind::Read, t()),
                AccessOutcome::BypassMiss
            );
        }
        store.access(8, RequestKind::Read, t());
        assert_eq!(store.stats().allocation_writes, 0);
        // Day boundary: block 7 earned residency.
        let transition = store.day_boundary(Day::new(1)).expect("discrete installs");
        assert_eq!(transition.allocated, vec![7]);
        assert!(store.contains(7));
        assert!(!store.contains(8));
        assert_eq!(store.stats().allocation_writes, 1);
        assert_eq!(store.stats().batch_allocations, 1);
        // Day 1: hits on the installed block.
        assert_eq!(store.access(7, RequestKind::Write, t()), AccessOutcome::Hit);
    }

    #[test]
    fn ideal_oracle_preloads_each_day() {
        let mut store = build(
            PolicySpec::IdealTop1 {
                selections: vec![vec![1, 2], vec![2, 3]],
            },
            16,
        );
        store.day_boundary(Day::new(0));
        assert!(store.contains(1) && store.contains(2));
        let transition = store.day_boundary(Day::new(1)).unwrap();
        assert_eq!(transition.allocated, vec![3]);
        assert_eq!(transition.retained, 1);
        assert_eq!(transition.evicted, 1);
        assert!(!store.contains(1));
    }

    #[test]
    fn continuous_policies_ignore_day_boundaries() {
        let mut store = build(PolicySpec::Aod, 4);
        assert!(store.day_boundary(Day::new(1)).is_none());
    }

    #[test]
    fn sievestore_c_appliance_sieves_cold_misses() {
        let cfg = TwoTierConfig::paper_default().with_imct_entries(1 << 14);
        let mut store = build(PolicySpec::SieveStoreC(cfg), 1024);
        // 1000 one-touch blocks: no allocations.
        for k in 0..1000u64 {
            assert_eq!(
                store.access(k, RequestKind::Read, t()),
                AccessOutcome::BypassMiss
            );
        }
        assert_eq!(store.stats().allocation_writes, 0);
        // One hot block eventually earns its frame and then hits.
        let mut allocated_at = None;
        for i in 1..=20 {
            if store
                .access(u64::MAX, RequestKind::Read, t())
                .is_allocation()
            {
                allocated_at = Some(i);
                break;
            }
        }
        assert_eq!(allocated_at, Some(13), "t1=9 + t2=4 misses");
        assert_eq!(
            store.access(u64::MAX, RequestKind::Read, t()),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn sieve_eviction_appliance_hits_and_evicts() {
        let mut store = SieveStoreBuilder::new()
            .capacity_blocks(2)
            .policy(PolicySpec::Aod)
            .eviction(EvictionPolicy::Sieve)
            .build()
            .expect("valid appliance config");
        assert_eq!(
            store.access(1, RequestKind::Read, t()),
            AccessOutcome::AllocatedMiss { evicted: None }
        );
        store.access(2, RequestKind::Read, t());
        // Hit on 1 sets its visited bit; the hand then spares it and
        // evicts 2 — LRU would have made the same call here, but via a
        // list move instead of a bit flip.
        assert_eq!(store.access(1, RequestKind::Read, t()), AccessOutcome::Hit);
        assert_eq!(
            store.access(3, RequestKind::Read, t()),
            AccessOutcome::AllocatedMiss { evicted: Some(2) }
        );
        assert!(store.contains(1) && store.contains(3));
        assert_eq!(store.stats().read_hits, 1);
        // Day boundaries are still a no-op for continuous policies.
        assert!(store.day_boundary(Day::new(1)).is_none());
    }

    #[test]
    fn warm_restores_residency_under_sieve() {
        let mut store = SieveStoreBuilder::new()
            .capacity_blocks(4)
            .policy(PolicySpec::Aod)
            .eviction(EvictionPolicy::Sieve)
            .build()
            .unwrap();
        store.warm([10, 11, 12]);
        assert_eq!(store.len_blocks(), 3);
        assert!(store.contains(10) && store.contains(11) && store.contains(12));
        assert_eq!(store.stats().allocation_writes, 0);
    }

    #[test]
    fn sharded_builder_splits_capacity_and_routes_policies() {
        let cfg = TwoTierConfig::paper_default().with_imct_entries(1 << 12);
        for shard in 0..3usize {
            let store = SieveStoreBuilder::new()
                .capacity_blocks(10)
                .policy(PolicySpec::Aod)
                .shard(shard, 3)
                .build()
                .expect("valid shard");
            // 10 frames over 3 shards: 4 + 3 + 3.
            let expect = if shard == 0 { 4 } else { 3 };
            assert_eq!(store.capacity_blocks(), expect);
        }
        // Discrete policies refuse per-shard construction.
        assert!(SieveStoreBuilder::new()
            .policy(PolicySpec::SieveStoreD { threshold: 10 })
            .shard(0, 2)
            .build()
            .is_err());
        // A shard count that does not divide the IMCT is rejected.
        assert!(SieveStoreBuilder::new()
            .policy(PolicySpec::SieveStoreC(cfg))
            .shard(0, 3)
            .build()
            .is_err());
        assert!(SieveStoreBuilder::new()
            .policy(PolicySpec::Aod)
            .shard(2, 2)
            .build()
            .is_err());
    }

    #[test]
    fn one_shard_aod_behaves_like_unsharded() {
        let mut whole = build(PolicySpec::Aod, 8);
        let mut sharded = SieveStoreBuilder::new()
            .capacity_blocks(8)
            .policy(PolicySpec::Aod)
            .shard(0, 1)
            .build()
            .unwrap();
        for key in [1u64, 2, 1, 3, 2, 1] {
            assert_eq!(
                whole.access(key, RequestKind::Read, t()),
                sharded.access(key, RequestKind::Read, t())
            );
        }
        assert_eq!(whole.stats(), sharded.stats());
    }

    #[test]
    fn spec_discreteness_matches_built_policy() {
        assert!(!PolicySpec::Aod.is_discrete());
        assert!(!PolicySpec::SieveStoreC(TwoTierConfig::paper_default()).is_discrete());
        assert!(PolicySpec::SieveStoreD { threshold: 1 }.is_discrete());
        assert!(PolicySpec::IdealTop1 { selections: vec![] }.is_discrete());
        assert!(PolicySpec::RandSieveBlkD {
            fraction: 0.5,
            seed: 1
        }
        .is_discrete());
    }

    #[test]
    fn policy_spec_names() {
        assert_eq!(PolicySpec::Aod.name(), "AOD");
        assert_eq!(PolicySpec::Wmna.name(), "WMNA");
        assert_eq!(
            PolicySpec::SieveStoreD { threshold: 10 }.name(),
            "SieveStore-D"
        );
        assert_eq!(PolicySpec::IdealTop1 { selections: vec![] }.name(), "Ideal");
    }

    #[test]
    fn debug_output_is_nonempty() {
        let store = build(PolicySpec::Aod, 4);
        let dbg = format!("{store:?}");
        assert!(dbg.contains("AOD"));
        assert!(dbg.contains("capacity"));
    }
}
