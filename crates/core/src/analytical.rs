//! The closed-form allocation-write model behind Table 2.
//!
//! The paper's thought experiment (§3.1) isolates the cost of
//! allocation-writes: assume an oracle replacement policy keeps the top-1 %
//! blocks resident (so every policy sees the same hit rate), then count how
//! many SSD operations each *allocation* policy performs. With a 35 % hit
//! rate and a 3:1 read:write mix, allocate-on-demand turns 73.75 % of all
//! ensemble accesses into SSD writes while ideal selective allocation
//! writes only the ~1 % of blocks it admits.

use std::fmt;

/// One row of Table 2, all quantities as fractions of total accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Fraction of accesses that hit.
    pub hits: f64,
    /// Fraction of accesses that miss.
    pub misses: f64,
    /// Fraction of accesses that trigger allocation-writes.
    pub allocation_writes: f64,
    /// SSD read operations (read hits).
    pub ssd_reads: f64,
    /// SSD write operations (write hits + allocation-writes).
    pub ssd_writes: f64,
}

impl Table2Row {
    /// Total SSD operations as a fraction of accesses.
    pub fn ssd_operations(&self) -> f64 {
        self.ssd_reads + self.ssd_writes
    }
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {:.2}% misses {:.2}% alloc-writes {:.2}% ssd-reads {:.2}% ssd-writes {:.2}%",
            self.hits * 100.0,
            self.misses * 100.0,
            self.allocation_writes * 100.0,
            self.ssd_reads * 100.0,
            self.ssd_writes * 100.0,
        )
    }
}

/// The three allocation policies Table 2 analyzes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalyticalPolicy {
    /// Allocate-on-demand: every miss allocates.
    AllocateOnDemand,
    /// Write-no-allocate: only read misses allocate.
    WriteNoAllocate,
    /// Ideal selective allocation: only the admitted hot set (ε) allocates.
    IdealSelective {
        /// Allocation-writes as a fraction of accesses (the paper's ε,
        /// bounded by 1 % of unique blocks).
        epsilon: f64,
    },
}

impl AnalyticalPolicy {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            AnalyticalPolicy::AllocateOnDemand => "Allocate-on-demand (AOD)",
            AnalyticalPolicy::WriteNoAllocate => "Write-no-allocate (WMNA)",
            AnalyticalPolicy::IdealSelective { .. } => "Ideal-selective-allocate (ISA)",
        }
    }
}

/// Computes one Table 2 row.
///
/// `hit_rate` is the (oracle-replacement) hit fraction; `read_fraction`
/// applies to both hits and misses, as in the paper.
///
/// # Panics
///
/// Panics if `hit_rate` or `read_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use sievestore::analytical::{table2_row, AnalyticalPolicy};
///
/// // The paper's numbers: 35% hit rate, 3:1 reads.
/// let aod = table2_row(AnalyticalPolicy::AllocateOnDemand, 0.35, 0.75);
/// assert!((aod.ssd_writes - 0.7375).abs() < 1e-9);
/// assert!((aod.ssd_operations() - 1.0).abs() < 1e-9);
/// ```
pub fn table2_row(policy: AnalyticalPolicy, hit_rate: f64, read_fraction: f64) -> Table2Row {
    assert!((0.0..=1.0).contains(&hit_rate), "hit_rate must be in [0,1]");
    assert!(
        (0.0..=1.0).contains(&read_fraction),
        "read_fraction must be in [0,1]"
    );
    let miss_rate = 1.0 - hit_rate;
    let read_hits = hit_rate * read_fraction;
    let write_hits = hit_rate * (1.0 - read_fraction);
    let allocation_writes = match policy {
        AnalyticalPolicy::AllocateOnDemand => miss_rate,
        AnalyticalPolicy::WriteNoAllocate => miss_rate * read_fraction,
        AnalyticalPolicy::IdealSelective { epsilon } => epsilon,
    };
    Table2Row {
        hits: hit_rate,
        misses: miss_rate,
        allocation_writes,
        ssd_reads: read_hits,
        ssd_writes: write_hits + allocation_writes,
    }
}

/// All three rows of Table 2 with shared parameters, paper order.
pub fn table2(
    hit_rate: f64,
    read_fraction: f64,
    epsilon: f64,
) -> Vec<(AnalyticalPolicy, Table2Row)> {
    [
        AnalyticalPolicy::AllocateOnDemand,
        AnalyticalPolicy::WriteNoAllocate,
        AnalyticalPolicy::IdealSelective { epsilon },
    ]
    .into_iter()
    .map(|p| (p, table2_row(p, hit_rate, read_fraction)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn aod_row_matches_paper() {
        // Hits 35%, misses 65%, alloc-writes 65%,
        // SSD ops: reads 26.25%, writes 73.75% (= 8.75% + 65%).
        let row = table2_row(AnalyticalPolicy::AllocateOnDemand, 0.35, 0.75);
        assert!((row.hits - 0.35).abs() < EPS);
        assert!((row.misses - 0.65).abs() < EPS);
        assert!((row.allocation_writes - 0.65).abs() < EPS);
        assert!((row.ssd_reads - 0.2625).abs() < EPS);
        assert!((row.ssd_writes - 0.7375).abs() < EPS);
        assert!((row.ssd_operations() - 1.0).abs() < EPS);
    }

    #[test]
    fn wmna_row_matches_paper() {
        // Alloc-writes 48.75% (read misses), SSD writes 57.5%.
        let row = table2_row(AnalyticalPolicy::WriteNoAllocate, 0.35, 0.75);
        assert!((row.allocation_writes - 0.4875).abs() < EPS);
        assert!((row.ssd_writes - 0.575).abs() < EPS);
        assert!((row.ssd_reads - 0.2625).abs() < EPS);
    }

    #[test]
    fn isa_row_matches_paper() {
        // With ε → 0, SSD writes → write hits = 8.75%, ops < 9.75% for
        // any ε < 1%.
        let row = table2_row(
            AnalyticalPolicy::IdealSelective { epsilon: 0.005 },
            0.35,
            0.75,
        );
        assert!((row.allocation_writes - 0.005).abs() < EPS);
        assert!(row.ssd_writes < 0.0975);
        assert!(row.ssd_operations() < 0.36);
    }

    #[test]
    fn paper_multipliers_hold() {
        // WMNA more than doubles SSD operations vs hits-only (2.4x) and
        // multiplies SSD writes by ~5.6x over write hits.
        let wmna = table2_row(AnalyticalPolicy::WriteNoAllocate, 0.35, 0.75);
        let ops_multiplier = wmna.ssd_operations() / 0.35;
        assert!((ops_multiplier - 2.39).abs() < 0.01, "{ops_multiplier}");
        let write_multiplier = wmna.ssd_writes / (0.35 * 0.25);
        assert!((write_multiplier - 6.57).abs() < 0.01, "{write_multiplier}");
    }

    #[test]
    fn table_is_three_rows_in_paper_order() {
        let rows = table2(0.35, 0.75, 0.001);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0.label(), "Allocate-on-demand (AOD)");
        assert_eq!(rows[2].0.label(), "Ideal-selective-allocate (ISA)");
        // AOD writes the most, ISA the least.
        assert!(rows[0].1.ssd_writes > rows[1].1.ssd_writes);
        assert!(rows[1].1.ssd_writes > rows[2].1.ssd_writes);
    }

    #[test]
    #[should_panic(expected = "hit_rate")]
    fn invalid_hit_rate_panics() {
        let _ = table2_row(AnalyticalPolicy::AllocateOnDemand, 1.5, 0.75);
    }

    #[test]
    fn display_renders_percentages() {
        let row = table2_row(AnalyticalPolicy::AllocateOnDemand, 0.35, 0.75);
        let s = row.to_string();
        assert!(s.contains("35.00%"));
        assert!(s.contains("73.75%"));
    }
}
