//! # SieveStore
//!
//! A Rust implementation of **SieveStore** (Pritchett & Thottethodi,
//! ISCA 2010): a highly-selective, ensemble-level disk cache that lets a
//! small SSD (16–32 GB) absorb a large fraction of the block traffic of a
//! multi-terabyte, multi-server storage ensemble.
//!
//! The core mechanism is **sieving** — *selective cache allocation*.
//! Conventional caches allocate a frame on (almost) every miss, and on a
//! write-asymmetric device each such allocation is a slow SSD write. On
//! ensemble workloads, where ≥99 % of daily blocks see ≤10 accesses, those
//! allocation-writes dominate the device's operation mix and cripple it.
//! A sieve refuses allocation to low-reuse blocks, eliminating the writes
//! while *raising* the hit ratio (no cache pollution).
//!
//! Two practical sieves are provided:
//!
//! * **SieveStore-D** ([`policy::SieveStoreD`]) — discrete: counts every
//!   access per epoch (offline-loggable via `sievestore-extsort`) and
//!   batch-installs the blocks with ≥ 10 accesses at day boundaries.
//! * **SieveStore-C** ([`policy::SieveStoreC`]) — continuous: allocates on
//!   the n-th miss within a recent window, gated through a two-tier
//!   imprecise/precise miss-count table (`sievestore-sieve`).
//!
//! Baselines from the paper ship alongside: AOD, WMNA, RandSieve-C,
//! RandSieve-BlkD and the clairvoyant per-day ideal.
//!
//! # Quick start
//!
//! ```
//! use sievestore::{PolicySpec, SieveStoreBuilder};
//! use sievestore_types::{Micros, RequestKind};
//!
//! # fn main() -> Result<(), sievestore_types::SieveError> {
//! let mut store = SieveStoreBuilder::new()
//!     .capacity_blocks(32 * 1024) // 16 MiB of 512-B frames
//!     .policy(PolicySpec::SieveStoreD { threshold: 10 })
//!     .build()?;
//!
//! // Feed block accesses; misses bypass until the day boundary installs
//! // the blocks that earned residency.
//! for _ in 0..12 {
//!     store.access(7, RequestKind::Read, Micros::from_hours(1));
//! }
//! store.day_boundary(sievestore_types::Day::new(1));
//! assert!(store.contains(7));
//! # Ok(())
//! # }
//! ```
//!
//! The trace-driven reproduction of the paper's evaluation lives in the
//! companion crates `sievestore-sim` (engine), `sievestore-trace`
//! (calibrated synthetic ensemble traces) and `sievestore-bench`
//! (per-figure experiment harness).

#![warn(missing_docs)]

pub mod analytical;
pub mod appliance;
pub mod policy;
pub mod tuning;

pub use appliance::{AccessOutcome, ApplianceStats, PolicySpec, SieveStore, SieveStoreBuilder};
pub use policy::{AllocationPolicy, MissDecision};
pub use sievestore_cache::EvictionPolicy;
