//! Scaling and tuning (§7's forward-looking issues).
//!
//! The paper closes with two deployment questions this module answers in
//! code:
//!
//! * **Tuning** — the ADBA threshold `t` was hand-tuned to 10; on a
//!   different ensemble the right value differs. [`AdaptiveThreshold`] is
//!   a feedback controller that retunes `t` each epoch so the selected
//!   block set tracks a target cache occupancy, staying inside the
//!   paper's observed safe band (degradation below ~8, flat 8–20).
//! * **Scaling** — one appliance's SSD and network eventually saturate.
//!   [`ShardedSieveStore`] scales out by hashing blocks across several
//!   independent appliances, preserving per-block policy behaviour
//!   exactly (each block always lands on the same shard, so its miss
//!   history is never split).

use sievestore_types::{Day, Micros, RequestKind, SieveError};

use crate::appliance::{AccessOutcome, ApplianceStats, PolicySpec, SieveStore, SieveStoreBuilder};

/// Feedback controller for SieveStore-D's epoch threshold.
///
/// After each epoch, feed it the number of blocks the current threshold
/// selected; it nudges the threshold so the selection tracks
/// `target_blocks` (typically the cache capacity), clamped to
/// `[min, max]`.
///
/// # Examples
///
/// ```
/// use sievestore::tuning::AdaptiveThreshold;
///
/// let mut t = AdaptiveThreshold::new(10, 8, 20, 10_000).unwrap();
/// // Selection far exceeded the cache: tighten.
/// assert_eq!(t.observe_epoch(40_000), 11);
/// // Selection far below half the target: loosen.
/// assert_eq!(t.observe_epoch(2_000), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveThreshold {
    current: u64,
    min: u64,
    max: u64,
    target_blocks: u64,
}

impl AdaptiveThreshold {
    /// Creates a controller starting at `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] unless
    /// `0 < min <= initial <= max` and `target_blocks > 0`.
    pub fn new(initial: u64, min: u64, max: u64, target_blocks: u64) -> Result<Self, SieveError> {
        if min == 0 || min > initial || initial > max {
            return Err(SieveError::InvalidConfig(format!(
                "need 0 < min <= initial <= max, got {min} <= {initial} <= {max}"
            )));
        }
        if target_blocks == 0 {
            return Err(SieveError::InvalidConfig(
                "target_blocks must be positive".into(),
            ));
        }
        Ok(AdaptiveThreshold {
            current: initial,
            min,
            max,
            target_blocks,
        })
    }

    /// The threshold to use for the next epoch.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Feeds back one epoch's selection size; returns the adjusted
    /// threshold. Over-selection (beyond the target) raises `t` one step;
    /// under-selection (below half the target) lowers it one step —
    /// deliberately slow, mirroring the paper's observation that the
    /// hit-rate is flat across a wide threshold band.
    pub fn observe_epoch(&mut self, selected_blocks: u64) -> u64 {
        if selected_blocks > self.target_blocks {
            self.current = (self.current + 1).min(self.max);
        } else if selected_blocks < self.target_blocks / 2 {
            self.current = (self.current - 1).max(self.min);
        }
        self.current
    }
}

/// A hash-sharded group of SieveStore appliances.
///
/// Blocks are routed by a stateless hash, so each block's entire miss
/// history lands on one shard and the sieving decision sequence is
/// identical to a single appliance's. Capacity, IOPS and network
/// bandwidth all scale with the shard count (§7's scaling argument).
///
/// # Examples
///
/// ```
/// use sievestore::tuning::ShardedSieveStore;
/// use sievestore::PolicySpec;
/// use sievestore_types::{Micros, RequestKind};
///
/// # fn main() -> Result<(), sievestore_types::SieveError> {
/// let mut group = ShardedSieveStore::new(4, 1024, |_| PolicySpec::Aod)?;
/// group.access(7, RequestKind::Read, Micros::from_secs(1));
/// assert!(group.access(7, RequestKind::Read, Micros::from_secs(2)).is_hit());
/// assert_eq!(group.shards(), 4);
/// # Ok(())
/// # }
/// ```
pub struct ShardedSieveStore {
    nodes: Vec<SieveStore>,
}

impl std::fmt::Debug for ShardedSieveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSieveStore")
            .field("shards", &self.nodes.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShardedSieveStore {
    /// Creates `shards` appliances, each holding `capacity_per_shard`
    /// frames, with per-shard policies from `policy_for`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for zero shards/capacity or
    /// an invalid policy.
    pub fn new(
        shards: usize,
        capacity_per_shard: usize,
        mut policy_for: impl FnMut(usize) -> PolicySpec,
    ) -> Result<Self, SieveError> {
        if shards == 0 {
            return Err(SieveError::InvalidConfig("need at least one shard".into()));
        }
        let nodes = (0..shards)
            .map(|i| {
                SieveStoreBuilder::new()
                    .capacity_blocks(capacity_per_shard)
                    .policy(policy_for(i))
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedSieveStore { nodes })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// The shard index a block routes to (stateless SplitMix64 hash).
    pub fn shard_of(&self, key: u64) -> usize {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.nodes.len() as u64) as usize
    }

    /// Routes one block access to its shard.
    pub fn access(&mut self, key: u64, kind: RequestKind, now: Micros) -> AccessOutcome {
        let shard = self.shard_of(key);
        self.nodes[shard].access(key, kind, now)
    }

    /// Signals a day boundary to every shard; returns the total number of
    /// blocks batch-installed across shards.
    pub fn day_boundary(&mut self, day: Day) -> u64 {
        self.nodes
            .iter_mut()
            .filter_map(|n| n.day_boundary(day))
            .map(|t| t.allocated.len() as u64)
            .sum()
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> ApplianceStats {
        let mut total = ApplianceStats::default();
        for n in &self.nodes {
            let s = n.stats();
            total.read_hits += s.read_hits;
            total.write_hits += s.write_hits;
            total.read_misses += s.read_misses;
            total.write_misses += s.write_misses;
            total.allocation_writes += s.allocation_writes;
            total.batch_allocations += s.batch_allocations;
        }
        total
    }

    /// Per-shard resident block counts (for balance diagnostics).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.len_blocks()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use sievestore_sieve::TwoTierConfig;

    #[test]
    fn adaptive_threshold_validation() {
        assert!(AdaptiveThreshold::new(10, 8, 20, 100).is_ok());
        assert!(AdaptiveThreshold::new(10, 0, 20, 100).is_err());
        assert!(AdaptiveThreshold::new(7, 8, 20, 100).is_err());
        assert!(AdaptiveThreshold::new(21, 8, 20, 100).is_err());
        assert!(AdaptiveThreshold::new(10, 8, 20, 0).is_err());
    }

    #[test]
    fn adaptive_threshold_tracks_target() {
        let mut t = AdaptiveThreshold::new(10, 8, 20, 1000).unwrap();
        // Persistent over-selection walks the threshold to its cap.
        for _ in 0..30 {
            t.observe_epoch(10_000);
        }
        assert_eq!(t.current(), 20);
        // Persistent under-selection walks it back to the floor.
        for _ in 0..30 {
            t.observe_epoch(10);
        }
        assert_eq!(t.current(), 8);
        // In-band selections leave it alone.
        let before = t.current();
        t.observe_epoch(800);
        assert_eq!(t.current(), before);
    }

    #[test]
    fn sharding_preserves_per_block_behaviour() {
        // A sharded group of AOD caches behaves exactly like one cache of
        // the aggregate capacity when each shard never overflows.
        let mut group = ShardedSieveStore::new(4, 1 << 12, |_| PolicySpec::Aod).unwrap();
        let mut single = SieveStoreBuilder::new()
            .capacity_blocks(4 << 12)
            .policy(PolicySpec::Aod)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        for i in 0..10_000u64 {
            let key = rng.random_range(0..4000u64);
            let now = Micros::from_secs(i);
            let a = group.access(key, RequestKind::Read, now);
            let b = single.access(key, RequestKind::Read, now);
            assert_eq!(a.is_hit(), b.is_hit(), "access {i} key {key}");
        }
        assert_eq!(group.stats().hits(), single.stats().hits());
    }

    #[test]
    fn sharded_sieving_decisions_are_stable() {
        // The same block always routes to the same shard, so SieveStore-C
        // admission happens after the same global miss count as unsharded.
        let cfg = TwoTierConfig::paper_default()
            .with_imct_entries(1 << 14)
            .with_thresholds(2, 2);
        let mut group =
            ShardedSieveStore::new(3, 1 << 10, |_| PolicySpec::SieveStoreC(cfg)).unwrap();
        let now = Micros::from_hours(1);
        let mut allocated_at = None;
        for i in 1..=10 {
            if group.access(42, RequestKind::Read, now).is_allocation() {
                allocated_at = Some(i);
                break;
            }
        }
        assert_eq!(allocated_at, Some(4), "t1=2 + t2=2 additional misses");
    }

    #[test]
    fn shards_balance_under_uniform_keys() {
        let mut group = ShardedSieveStore::new(8, 1 << 16, |_| PolicySpec::Aod).unwrap();
        for key in 0..64_000u64 {
            group.access(key, RequestKind::Write, Micros::new(key));
        }
        let loads = group.shard_loads();
        let mean = 64_000.0 / 8.0;
        for (i, &l) in loads.iter().enumerate() {
            let dev = (l as f64 - mean).abs() / mean;
            assert!(dev < 0.05, "shard {i} load {l} deviates {dev:.3} from mean");
        }
    }

    #[test]
    fn discrete_policies_batch_install_per_shard() {
        let mut group =
            ShardedSieveStore::new(2, 1 << 10, |_| PolicySpec::SieveStoreD { threshold: 2 })
                .unwrap();
        for _ in 0..3 {
            group.access(1, RequestKind::Read, Micros::from_hours(1));
            group.access(2, RequestKind::Read, Micros::from_hours(1));
        }
        let installed = group.day_boundary(Day::new(1));
        assert_eq!(installed, 2, "both hot blocks install on their shards");
        assert!(group
            .access(1, RequestKind::Read, Micros::from_hours(25))
            .is_hit());
        assert!(group
            .access(2, RequestKind::Read, Micros::from_hours(25))
            .is_hit());
    }
}
