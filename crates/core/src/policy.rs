//! The allocation-policy abstraction and all policies from Table 3.
//!
//! A policy answers one question — *does this missing block get a cache
//! frame?* — plus, for the discrete policies, *which blocks are batch-
//! installed at an epoch boundary?* The paper's Table 3 enumerates:
//!
//! | Key | Policy | When is a block allocated? |
//! |---|---|---|
//! | AOD | Allocate-on-demand | on a miss |
//! | WMNA | Write-no-allocate | on a read-miss |
//! | SieveStore-D | access-count discrete batch-allocation | count ≥ t in an epoch → enters at the epoch end |
//! | SieveStore-C | lazy allocation | on the n-th miss in the recent window |
//!
//! plus the randomized baselines RandSieve-BlkD / RandSieve-C and the
//! clairvoyant ideal (top 1 % of each day's blocks).

use std::collections::HashSet;

use sievestore_extsort::{CountingConfig, EpochCounter};
use sievestore_sieve::{
    random_block_selection, DiscreteSieve, RandomMissSieve, TwoTierConfig, TwoTierSieve,
};
use sievestore_types::{Day, Micros, RequestKind, SieveError};

/// Verdict for a missing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissDecision {
    /// Bring the block into the cache (incurs an allocation-write).
    Allocate,
    /// Serve the miss from the underlying ensemble; no cache change.
    Bypass,
}

impl MissDecision {
    /// Whether the decision allocates.
    pub const fn is_allocate(self) -> bool {
        matches!(self, MissDecision::Allocate)
    }
}

/// A cache-allocation policy (continuous or discrete).
///
/// Continuous policies decide per miss via
/// [`AllocationPolicy::on_miss`]; discrete policies bypass every miss and
/// instead return a batch selection from
/// [`AllocationPolicy::on_day_boundary`].
pub trait AllocationPolicy {
    /// Short identifier used in reports ("AOD", "SieveStore-C", ...).
    fn name(&self) -> &str;

    /// Observes every block access (hit or miss). Discrete access-count
    /// policies do their bookkeeping here.
    fn on_access(&mut self, _key: u64, _kind: RequestKind, _now: Micros) {}

    /// Observes a cache hit.
    fn on_hit(&mut self, _key: u64, _kind: RequestKind, _now: Micros) {}

    /// Decides a cache miss.
    fn on_miss(&mut self, key: u64, kind: RequestKind, now: Micros) -> MissDecision;

    /// Called when calendar day `day` begins. A `Some` return is the exact
    /// set to batch-install for the new epoch (discrete policies);
    /// `None` leaves the cache contents alone (continuous policies).
    fn on_day_boundary(&mut self, _day: Day) -> Option<Vec<u64>> {
        None
    }

    /// Whether the policy uses epoch-batched (discrete) caching.
    fn is_discrete(&self) -> bool {
        false
    }
}

/// Allocate-on-demand: every miss allocates.
///
/// # Examples
///
/// ```
/// use sievestore::policy::{AllocationPolicy, Aod, MissDecision};
/// use sievestore_types::{Micros, RequestKind};
///
/// let mut aod = Aod::new();
/// let d = aod.on_miss(1, RequestKind::Write, Micros::new(0));
/// assert_eq!(d, MissDecision::Allocate);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Aod;

impl Aod {
    /// Creates the policy.
    pub fn new() -> Self {
        Aod
    }
}

impl AllocationPolicy for Aod {
    fn name(&self) -> &str {
        "AOD"
    }

    fn on_miss(&mut self, _key: u64, _kind: RequestKind, _now: Micros) -> MissDecision {
        MissDecision::Allocate
    }
}

/// Write-miss-no-allocate: only read misses allocate.
///
/// # Examples
///
/// ```
/// use sievestore::policy::{AllocationPolicy, MissDecision, Wmna};
/// use sievestore_types::{Micros, RequestKind};
///
/// let mut wmna = Wmna::new();
/// assert_eq!(wmna.on_miss(1, RequestKind::Read, Micros::new(0)), MissDecision::Allocate);
/// assert_eq!(wmna.on_miss(1, RequestKind::Write, Micros::new(0)), MissDecision::Bypass);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Wmna;

impl Wmna {
    /// Creates the policy.
    pub fn new() -> Self {
        Wmna
    }
}

impl AllocationPolicy for Wmna {
    fn name(&self) -> &str {
        "WMNA"
    }

    fn on_miss(&mut self, _key: u64, kind: RequestKind, _now: Micros) -> MissDecision {
        if kind.is_read() {
            MissDecision::Allocate
        } else {
            MissDecision::Bypass
        }
    }
}

/// SieveStore-C: hysteresis-based lazy allocation through the two-tier
/// IMCT/MCT sieve.
///
/// # Examples
///
/// ```
/// use sievestore::policy::SieveStoreC;
/// use sievestore_sieve::TwoTierConfig;
///
/// let policy = SieveStoreC::new(TwoTierConfig::paper_default()).unwrap();
/// assert_eq!(sievestore::policy::AllocationPolicy::name(&policy), "SieveStore-C");
/// ```
#[derive(Debug, Clone)]
pub struct SieveStoreC {
    sieve: TwoTierSieve,
}

impl SieveStoreC {
    /// Creates the policy with the given sieve parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if the sieve config is
    /// invalid.
    pub fn new(config: TwoTierConfig) -> Result<Self, SieveError> {
        Ok(SieveStoreC {
            sieve: TwoTierSieve::new(config)?,
        })
    }

    /// Creates shard `shard` of the policy split across `shards` parallel
    /// replay workers: its sieve owns the matching slice of the logical
    /// IMCT (see [`TwoTierSieve::for_shard`]) and, fed only its
    /// partition's misses, reproduces the whole sieve's decisions for
    /// those keys exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `shards` does not divide
    /// `config.imct_entries` or `shard` is out of range.
    pub fn for_shard(
        config: TwoTierConfig,
        shard: usize,
        shards: usize,
    ) -> Result<Self, SieveError> {
        Ok(SieveStoreC {
            sieve: TwoTierSieve::for_shard(config, shard, shards)?,
        })
    }

    /// Access to the underlying sieve (metastate diagnostics).
    pub fn sieve(&self) -> &TwoTierSieve {
        &self.sieve
    }
}

impl AllocationPolicy for SieveStoreC {
    fn name(&self) -> &str {
        "SieveStore-C"
    }

    fn on_miss(&mut self, key: u64, _kind: RequestKind, now: Micros) -> MissDecision {
        if self.sieve.on_miss(key, now) {
            MissDecision::Allocate
        } else {
            MissDecision::Bypass
        }
    }
}

/// RandSieve-C: allocates a random fraction of misses.
#[derive(Debug, Clone)]
pub struct RandSieveC {
    sieve: RandomMissSieve,
}

impl RandSieveC {
    /// Creates the policy; the paper samples 1 % of misses.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `probability` is outside
    /// `[0, 1]`.
    pub fn new(probability: f64, seed: u64) -> Result<Self, SieveError> {
        Ok(RandSieveC {
            sieve: RandomMissSieve::new(probability, seed)?,
        })
    }
}

impl AllocationPolicy for RandSieveC {
    fn name(&self) -> &str {
        "RandSieve-C"
    }

    fn on_miss(&mut self, _key: u64, _kind: RequestKind, _now: Micros) -> MissDecision {
        if self.sieve.on_miss() {
            MissDecision::Allocate
        } else {
            MissDecision::Bypass
        }
    }
}

/// SieveStore-D: counts every access during the day and batch-installs the
/// blocks whose count reached the threshold at the day boundary.
///
/// Misses never allocate mid-epoch; day 0 bootstraps with an empty cache.
/// The counting substrate is chosen by a
/// [`CountingConfig`]: the in-memory map (default) or the budgeted
/// spill-to-disk log for epochs whose distinct-key population exceeds RAM
/// — the selection at each boundary is identical either way.
#[derive(Debug)]
pub struct SieveStoreD {
    sieve: DiscreteSieve<EpochCounter>,
    counting: CountingConfig,
}

impl SieveStoreD {
    /// Creates the policy with the paper's threshold of 10 accesses/day.
    pub fn paper_default() -> Self {
        Self::new(DiscreteSieve::<EpochCounter>::PAPER_THRESHOLD).expect("paper threshold is valid")
    }

    /// Creates the policy with a custom threshold over in-memory counting.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `threshold == 0`.
    pub fn new(threshold: u64) -> Result<Self, SieveError> {
        Self::with_counting(threshold, CountingConfig::InMemory)
    }

    /// Creates the policy over an explicit counting backend.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `threshold == 0`, or a
    /// storage error if the spill backend cannot be set up.
    pub fn with_counting(threshold: u64, counting: CountingConfig) -> Result<Self, SieveError> {
        Ok(SieveStoreD {
            sieve: DiscreteSieve::new(counting.counter()?, threshold)?,
            counting,
        })
    }

    /// The allocation threshold.
    pub fn threshold(&self) -> u64 {
        self.sieve.threshold()
    }

    /// The counting backend configuration.
    pub fn counting(&self) -> &CountingConfig {
        &self.counting
    }
}

impl AllocationPolicy for SieveStoreD {
    fn name(&self) -> &str {
        "SieveStore-D"
    }

    fn on_access(&mut self, key: u64, _kind: RequestKind, _now: Micros) {
        self.sieve.record_access(key);
    }

    fn on_miss(&mut self, _key: u64, _kind: RequestKind, _now: Micros) -> MissDecision {
        MissDecision::Bypass
    }

    /// # Panics
    ///
    /// Panics if the counting substrate fails at the boundary (spill-log
    /// I/O); the infallible trait signature has nowhere to surface it.
    fn on_day_boundary(&mut self, _day: Day) -> Option<Vec<u64>> {
        let next = self
            .counting
            .counter()
            .expect("epoch counting backend failed to restart");
        Some(self.sieve.end_epoch(next).expect("access counting failed"))
    }

    fn is_discrete(&self) -> bool {
        true
    }
}

/// RandSieve-BlkD: batch-installs a random fraction of the blocks accessed
/// in the previous day.
#[derive(Debug)]
pub struct RandSieveBlkD {
    accessed: HashSet<u64>,
    fraction: f64,
    seed: u64,
    epoch: u64,
}

impl RandSieveBlkD {
    /// Creates the policy; the paper samples 1 % of accessed blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if `fraction` is outside
    /// `[0, 1]`.
    pub fn new(fraction: f64, seed: u64) -> Result<Self, SieveError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(SieveError::InvalidConfig(format!(
                "selection fraction must be in [0,1], got {fraction}"
            )));
        }
        Ok(RandSieveBlkD {
            accessed: HashSet::new(),
            fraction,
            seed,
            epoch: 0,
        })
    }
}

impl AllocationPolicy for RandSieveBlkD {
    fn name(&self) -> &str {
        "RandSieve-BlkD"
    }

    fn on_access(&mut self, key: u64, _kind: RequestKind, _now: Micros) {
        self.accessed.insert(key);
    }

    fn on_miss(&mut self, _key: u64, _kind: RequestKind, _now: Micros) -> MissDecision {
        MissDecision::Bypass
    }

    fn on_day_boundary(&mut self, _day: Day) -> Option<Vec<u64>> {
        let mut accessed: Vec<u64> = self.accessed.drain().collect();
        accessed.sort_unstable(); // determinism independent of hash order
        self.epoch += 1;
        Some(random_block_selection(
            accessed.into_iter(),
            self.fraction,
            self.seed ^ self.epoch,
        ))
    }

    fn is_discrete(&self) -> bool {
        true
    }
}

/// The clairvoyant ideal: at the start of day *d* the cache is loaded with
/// exactly day *d*'s top-1 % most-accessed blocks (precomputed by an
/// oracle pre-pass over the trace).
#[derive(Debug, Clone)]
pub struct IdealTop1 {
    /// Per-day selections, indexed by day.
    selections: Vec<Vec<u64>>,
}

impl IdealTop1 {
    /// Creates the oracle with one selection per day.
    pub fn new(selections: Vec<Vec<u64>>) -> Self {
        IdealTop1 { selections }
    }

    /// Number of days covered.
    pub fn days(&self) -> usize {
        self.selections.len()
    }
}

impl AllocationPolicy for IdealTop1 {
    fn name(&self) -> &str {
        "Ideal"
    }

    fn on_miss(&mut self, _key: u64, _kind: RequestKind, _now: Micros) -> MissDecision {
        MissDecision::Bypass
    }

    fn on_day_boundary(&mut self, day: Day) -> Option<Vec<u64>> {
        Some(
            self.selections
                .get(day.as_usize())
                .cloned()
                .unwrap_or_default(),
        )
    }

    fn is_discrete(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Micros {
        Micros::from_hours(1)
    }

    #[test]
    fn aod_always_allocates() {
        let mut p = Aod::new();
        assert!(p.on_miss(1, RequestKind::Read, now()).is_allocate());
        assert!(p.on_miss(1, RequestKind::Write, now()).is_allocate());
        assert!(!p.is_discrete());
        assert_eq!(p.name(), "AOD");
    }

    #[test]
    fn wmna_allocates_read_misses_only() {
        let mut p = Wmna::new();
        assert!(p.on_miss(1, RequestKind::Read, now()).is_allocate());
        assert!(!p.on_miss(1, RequestKind::Write, now()).is_allocate());
        assert!(p.on_day_boundary(Day::new(1)).is_none());
    }

    #[test]
    fn sievestore_c_requires_repeated_misses() {
        let cfg = TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(2, 1);
        let mut p = SieveStoreC::new(cfg).unwrap();
        assert!(!p.on_miss(9, RequestKind::Read, now()).is_allocate());
        assert!(!p.on_miss(9, RequestKind::Read, now()).is_allocate());
        assert!(p.on_miss(9, RequestKind::Read, now()).is_allocate());
        assert_eq!(p.sieve().granted(), 1);
    }

    #[test]
    fn sievestore_d_is_discrete_and_thresholded() {
        let mut p = SieveStoreD::new(3).unwrap();
        assert!(p.is_discrete());
        assert_eq!(p.threshold(), 3);
        for _ in 0..3 {
            p.on_access(5, RequestKind::Read, now());
        }
        p.on_access(6, RequestKind::Read, now());
        // Misses never allocate mid-epoch.
        assert!(!p.on_miss(5, RequestKind::Read, now()).is_allocate());
        let selected = p.on_day_boundary(Day::new(1)).unwrap();
        assert_eq!(selected, vec![5]);
        // The next epoch starts fresh.
        let selected = p.on_day_boundary(Day::new(2)).unwrap();
        assert!(selected.is_empty());
    }

    #[test]
    fn sievestore_d_paper_default_threshold_is_10() {
        assert_eq!(SieveStoreD::paper_default().threshold(), 10);
        assert!(SieveStoreD::new(0).is_err());
    }

    #[test]
    fn sievestore_d_selection_is_backend_independent() {
        let dir = std::env::temp_dir().join(format!("sievestore-polspill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let configs = [
            CountingConfig::InMemory,
            CountingConfig::spill(&dir).with_budget(8),
        ];
        let mut selections = Vec::new();
        for counting in configs {
            let mut p = SieveStoreD::with_counting(3, counting).unwrap();
            for k in 0..100u64 {
                for _ in 0..(k % 5) {
                    p.on_access(k, RequestKind::Read, now());
                }
            }
            selections.push(p.on_day_boundary(Day::new(1)).unwrap());
        }
        assert!(!selections[0].is_empty());
        assert_eq!(selections[0], selections[1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rand_blkd_selects_fraction_of_accessed() {
        let mut p = RandSieveBlkD::new(0.1, 7).unwrap();
        for k in 0..1000u64 {
            p.on_access(k, RequestKind::Read, now());
        }
        assert!(!p.on_miss(1, RequestKind::Read, now()).is_allocate());
        let sel = p.on_day_boundary(Day::new(1)).unwrap();
        assert_eq!(sel.len(), 100);
        assert!(sel.iter().all(|&k| k < 1000));
        // Second epoch saw no accesses.
        assert!(p.on_day_boundary(Day::new(2)).unwrap().is_empty());
        assert!(RandSieveBlkD::new(1.5, 0).is_err());
    }

    #[test]
    fn rand_c_respects_probability_extremes() {
        let mut never = RandSieveC::new(0.0, 1).unwrap();
        assert!((0..100).all(|_| !never.on_miss(1, RequestKind::Read, now()).is_allocate()));
        let mut always = RandSieveC::new(1.0, 1).unwrap();
        assert!((0..100).all(|_| always.on_miss(1, RequestKind::Read, now()).is_allocate()));
        assert!(RandSieveC::new(-0.1, 0).is_err());
    }

    #[test]
    fn ideal_returns_per_day_selections() {
        let mut p = IdealTop1::new(vec![vec![1, 2], vec![3]]);
        assert_eq!(p.days(), 2);
        assert_eq!(p.on_day_boundary(Day::new(0)).unwrap(), vec![1, 2]);
        assert_eq!(p.on_day_boundary(Day::new(1)).unwrap(), vec![3]);
        assert!(p.on_day_boundary(Day::new(5)).unwrap().is_empty());
        assert!(!p.on_miss(1, RequestKind::Read, now()).is_allocate());
    }

    #[test]
    fn policies_compose_as_trait_objects() {
        let mut policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(Aod::new()),
            Box::new(Wmna::new()),
            Box::new(SieveStoreD::paper_default()),
        ];
        for p in &mut policies {
            let _ = p.on_miss(1, RequestKind::Read, now());
        }
        assert_eq!(policies[2].name(), "SieveStore-D");
    }
}
