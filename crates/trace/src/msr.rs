//! Import of MSR-Cambridge-format block traces.
//!
//! The paper's evaluation uses the MSR Cambridge traces (SNIA IOTTA
//! "MSR Cambridge" collection). Those CSVs have the row shape
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! ```
//!
//! with `Timestamp` in Windows filetime units (100 ns ticks since 1601),
//! `Type` one of `Read`/`Write`, `Offset`/`Size` in bytes, and
//! `ResponseTime` in the same 100 ns ticks. This module converts such rows
//! into [`Request`]s so anyone holding the real traces can feed them
//! through the same simulator the synthetic substitute drives.
//!
//! Hostnames map to [`ServerId`]s in first-seen order (retrievable from
//! [`MsrReader::servers`]); the first record's timestamp becomes trace
//! time zero unless an explicit epoch is given.

use std::io::{BufRead, BufReader, Read};

use sievestore_types::{
    BlockAddr, Micros, ParseRequestError, Request, RequestKind, ServerId, SieveError, VolumeId,
    BLOCK_SIZE,
};

/// Windows filetime ticks per microsecond.
const TICKS_PER_MICRO: u64 = 10;

/// Streaming reader for MSR-Cambridge CSV traces.
///
/// # Examples
///
/// ```
/// use sievestore_trace::MsrReader;
///
/// let csv = "\
/// 128166372003061629,usr,0,Read,7014609920,24576,41286\n\
/// 128166372016382155,usr,0,Write,2981888,4096,793\n";
/// let mut reader = MsrReader::new(csv.as_bytes());
/// let reqs: Result<Vec<_>, _> = (&mut reader).collect();
/// let reqs = reqs.unwrap();
/// assert_eq!(reqs.len(), 2);
/// assert_eq!(reqs[0].timestamp.as_u64(), 0); // epoch = first record
/// assert_eq!(reqs[0].len_blocks, 48);        // 24576 B = 48 blocks
/// assert_eq!(reader.servers(), &["usr".to_string()]);
/// ```
#[derive(Debug)]
pub struct MsrReader<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
    servers: Vec<String>,
    epoch_ticks: Option<u64>,
    record: u64,
}

impl<R: Read> MsrReader<R> {
    /// Creates a reader; the first record's timestamp becomes time zero.
    pub fn new(input: R) -> Self {
        MsrReader {
            lines: BufReader::new(input).lines(),
            servers: Vec::new(),
            epoch_ticks: None,
            record: 0,
        }
    }

    /// Creates a reader with an explicit epoch (Windows filetime ticks),
    /// e.g. midnight of the first calendar day, so that
    /// [`Micros::day`](sievestore_types::Micros::day) buckets match the
    /// paper's calendar-day analysis.
    pub fn with_epoch_ticks(input: R, epoch_ticks: u64) -> Self {
        MsrReader {
            lines: BufReader::new(input).lines(),
            servers: Vec::new(),
            epoch_ticks: Some(epoch_ticks),
            record: 0,
        }
    }

    /// Hostnames seen so far, indexed by their assigned [`ServerId`].
    pub fn servers(&self) -> &[String] {
        &self.servers
    }

    fn server_id(&mut self, hostname: &str) -> Result<ServerId, ParseRequestError> {
        if let Some(idx) = self.servers.iter().position(|h| h == hostname) {
            return Ok(ServerId::new(idx as u8));
        }
        if self.servers.len() >= 256 {
            return Err(ParseRequestError::new(
                self.record,
                "more than 256 distinct hostnames",
            ));
        }
        self.servers.push(hostname.to_string());
        Ok(ServerId::new((self.servers.len() - 1) as u8))
    }

    fn parse_line(&mut self, line: &str) -> Result<Option<Request>, SieveError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("Timestamp") {
            return Ok(None);
        }
        let err = |msg: String| ParseRequestError::new(self.record, msg);
        let mut fields = line.split(',');
        let mut next = |name: &str| {
            fields
                .next()
                .map(str::trim)
                .ok_or_else(|| err(format!("missing field {name}")))
        };
        let ticks: u64 = next("Timestamp")?
            .parse()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;
        let hostname = next("Hostname")?.to_string();
        let disk: u8 = next("DiskNumber")?
            .parse()
            .map_err(|e| err(format!("bad disk number: {e}")))?;
        let kind = match next("Type")? {
            t if t.eq_ignore_ascii_case("read") => RequestKind::Read,
            t if t.eq_ignore_ascii_case("write") => RequestKind::Write,
            other => return Err(err(format!("unknown request type '{other}'")).into()),
        };
        let offset: u64 = next("Offset")?
            .parse()
            .map_err(|e| err(format!("bad offset: {e}")))?;
        let size: u64 = next("Size")?
            .parse()
            .map_err(|e| err(format!("bad size: {e}")))?;
        let response_ticks: u64 = next("ResponseTime")?
            .parse()
            .map_err(|e| err(format!("bad response time: {e}")))?;

        if disk >= VolumeId::MAX_PER_SERVER {
            return Err(err(format!("disk number {disk} exceeds 16 volumes")).into());
        }
        let epoch = *self.epoch_ticks.get_or_insert(ticks);
        let timestamp = Micros::new(ticks.saturating_sub(epoch) / TICKS_PER_MICRO);
        let server = self.server_id(&hostname)?;
        // Byte offsets round down to block granularity; sizes round up, so
        // partially-covered blocks count in full (conservative, as in §4).
        let start_block = offset / BLOCK_SIZE as u64;
        let end_block = (offset + size.max(1)).div_ceil(BLOCK_SIZE as u64);
        let len = (end_block - start_block).max(1) as u32;
        let start = BlockAddr::new(server, VolumeId::new(disk), start_block);
        self.record += 1;
        Ok(Some(
            Request::new(timestamp, start, len, kind)
                .with_response_time(Micros::new(response_ticks / TICKS_PER_MICRO)),
        ))
    }
}

impl<R: Read> Iterator for MsrReader<R> {
    type Item = Result<Request, SieveError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(e.into())),
            };
            match self.parse_line(&line) {
                Ok(Some(req)) => return Some(Ok(req)),
                Ok(None) => continue, // header/comment/blank
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372016382155,usr,1,Write,2981888,4096,793
128166372026382155,proj,0,Read,512,1024,1000
";

    fn parse_all(input: &str) -> (Vec<Request>, Vec<String>) {
        let mut reader = MsrReader::new(input.as_bytes());
        let reqs: Result<Vec<_>, _> = (&mut reader).collect();
        (reqs.expect("valid sample"), reader.servers().to_vec())
    }

    #[test]
    fn parses_header_and_rows() {
        let (reqs, servers) = parse_all(SAMPLE);
        assert_eq!(reqs.len(), 3);
        assert_eq!(servers, vec!["usr".to_string(), "proj".to_string()]);
    }

    #[test]
    fn epoch_is_first_record() {
        let (reqs, _) = parse_all(SAMPLE);
        assert_eq!(reqs[0].timestamp.as_u64(), 0);
        // Second record: (128166372016382155 - ...629) / 10 ticks.
        assert_eq!(reqs[1].timestamp.as_u64(), 1_332_052);
    }

    #[test]
    fn explicit_epoch_is_respected() {
        let mut reader =
            MsrReader::with_epoch_ticks(SAMPLE.as_bytes(), 128166372003061629 - 10_000);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.timestamp.as_u64(), 1_000);
    }

    #[test]
    fn blocks_and_kinds_convert() {
        let (reqs, _) = parse_all(SAMPLE);
        assert_eq!(reqs[0].start.block, 7014609920 / 512);
        assert_eq!(reqs[0].len_blocks, 48);
        assert!(reqs[0].kind.is_read());
        assert!(reqs[1].kind.is_write());
        assert_eq!(reqs[1].start.volume.index(), 1);
        assert_eq!(reqs[1].response_time.as_u64(), 79);
        // Sub-block, unaligned: offset 512 size 1024 covers blocks 1..3.
        assert_eq!(reqs[2].start.block, 1);
        assert_eq!(reqs[2].len_blocks, 2);
    }

    #[test]
    fn unaligned_partial_blocks_round_up() {
        let csv = "1000,host,0,Read,100,100,0\n";
        let (reqs, _) = parse_all(csv);
        assert_eq!(reqs[0].start.block, 0);
        assert_eq!(reqs[0].len_blocks, 1);
        let csv = "1000,host,0,Read,500,100,0\n"; // straddles blocks 0 and 1
        let (reqs, _) = parse_all(csv);
        assert_eq!(reqs[0].len_blocks, 2);
    }

    #[test]
    fn zero_size_requests_become_one_block() {
        let csv = "1000,host,0,Write,1024,0,5\n";
        let (reqs, _) = parse_all(csv);
        assert_eq!(reqs[0].len_blocks, 1);
    }

    #[test]
    fn bad_rows_surface_as_parse_errors() {
        for bad in [
            "notanumber,h,0,Read,0,512,0\n",
            "1000,h,0,Fetch,0,512,0\n",
            "1000,h,0,Read,0\n",
            "1000,h,99,Read,0,512,0\n",
        ] {
            let mut reader = MsrReader::new(bad.as_bytes());
            assert!(reader.next().unwrap().is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = "# comment\n\n1000,h,0,Read,0,512,0\n";
        let (reqs, _) = parse_all(csv);
        assert_eq!(reqs.len(), 1);
    }

    #[test]
    fn same_hostname_reuses_server_id() {
        let csv = "1,a,0,Read,0,512,0\n2,b,0,Read,0,512,0\n3,a,0,Read,0,512,0\n";
        let (reqs, servers) = parse_all(csv);
        assert_eq!(servers.len(), 2);
        assert_eq!(reqs[0].start.server, reqs[2].start.server);
        assert_ne!(reqs[0].start.server, reqs[1].start.server);
    }
}
