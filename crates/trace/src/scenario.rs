//! Adversarial workload scenarios: seeded, deterministic transforms over
//! the trace stream.
//!
//! The base synthetic ensemble is a *steady-state* workload — the regime
//! the paper evaluates in. This module layers adversity on top of it:
//! a [`ScenarioConfig`] is an ordered chain of composable
//! [`ScenarioStage`]s that the stream generator applies to every request
//! after the k-way merge, so all four degradation modes the ROADMAP's
//! "scenario diversity" item names become replayable workloads:
//!
//! * [`ScenarioStage::FlashCrowd`] — during a window on one day, a small
//!   deterministic subset of 16-block chunks receives its traffic
//!   amplified ×k (the crowd hammering a handful of hot objects);
//! * [`ScenarioStage::HotSetInversion`] — from a chosen day onward every
//!   block address is mirrored across its volume's midpoint, so the
//!   learned hot set's addresses go cold and the former cold region
//!   carries the popular traffic;
//! * [`ScenarioStage::Failover`] — from a chosen day onward one server's
//!   load is re-sharded onto the survivors (chunk-consistent hashing),
//!   mixing a failed server's working set into everyone else's;
//! * [`ScenarioStage::ChurnBurst`] — during a window, a fraction of
//!   chunks is redirected to fresh, day-salted addresses: a surge of
//!   never-before-seen blocks mid-day.
//!
//! # Determinism contract
//!
//! Every stage is a *pure function* of the request, the compiled ensemble
//! geometry, and the scenario seed — no state is carried between
//! requests. Timestamps are never modified and amplified copies are
//! emitted adjacently, so the transformed sequence stays
//! timestamp-ordered, day-partitioned, and — because the transform is
//! per-request — **bit-identical for a given seed across chunk sizes,
//! pipeline depths, and spill mode**, exactly like the base stream
//! (pinned by `tests/scenario_engine.rs`). Transformed requests always
//! stay within their (possibly new) volume's capacity.
//!
//! # Examples
//!
//! ```
//! use sievestore_trace::{
//!     EnsembleConfig, ScenarioConfig, ScenarioStage, SyntheticTrace, TraceStreamConfig,
//! };
//!
//! let trace = SyntheticTrace::new(EnsembleConfig::tiny(42)).unwrap();
//! let scenario = ScenarioConfig::new(7).with_stage(ScenarioStage::HotSetInversion { from_day: 1 });
//! scenario.validate(trace.config()).unwrap();
//! let n = trace
//!     .stream(TraceStreamConfig::default().with_scenario(scenario))
//!     .requests()
//!     .count();
//! assert!(n > 0);
//! ```

use std::fmt;

use sievestore_types::{
    mix64, BlockAddr, GlobalBlock, Request, ServerId, SieveError, VolumeId, BLOCKS_PER_PAGE,
};

use crate::model::EnsembleConfig;

/// Address-remap granularity: popularity ranks in the generator address
/// 16-block chunks, so scenario remaps move whole chunks — a remapped
/// chunk keeps its internal reuse structure at its new address.
pub const SCENARIO_CHUNK_BLOCKS: u64 = 16;

/// One composable transform stage. See the module docs for what each
/// models; all fields are in trace-local units (day indices, minutes of
/// day, block fractions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioStage {
    /// Amplify a deterministic `crowd_fraction` of chunks ×`amplification`
    /// during `[start_minute, start_minute + duration_minutes)` on `day`.
    FlashCrowd {
        /// Calendar day of the spike.
        day: u16,
        /// First minute-of-day of the window.
        start_minute: u32,
        /// Window length in minutes.
        duration_minutes: u32,
        /// Copies emitted per crowd request (≥ 1; 1 = no-op).
        amplification: u32,
        /// Fraction of chunks in the crowd set (0..=1).
        crowd_fraction: f64,
    },
    /// From `from_day` onward, mirror every block across its volume's
    /// (page-aligned) midpoint: the generator places hot pools in the
    /// lower half and cold windows in the upper half, so this swaps the
    /// hot and cold address regions wholesale.
    HotSetInversion {
        /// First day the inversion applies (all later days included).
        from_day: u16,
    },
    /// From `from_day` onward, re-address every request of `server` onto
    /// the surviving servers by chunk-consistent hashing.
    Failover {
        /// First day the server is down.
        from_day: u16,
        /// Index of the failed server.
        server: u8,
    },
    /// During a window on `day`, redirect a `fraction` of chunks to
    /// fresh day-salted addresses (compulsory-miss surge).
    ChurnBurst {
        /// Calendar day of the burst.
        day: u16,
        /// First minute-of-day of the window.
        start_minute: u32,
        /// Window length in minutes.
        duration_minutes: u32,
        /// Fraction of chunks churned (0..=1).
        fraction: f64,
    },
}

impl fmt::Display for ScenarioStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioStage::FlashCrowd {
                day,
                start_minute,
                duration_minutes,
                amplification,
                crowd_fraction,
            } => write!(
                f,
                "flash_crowd(day={day},m={start_minute}+{duration_minutes},x{amplification},f={crowd_fraction})"
            ),
            ScenarioStage::HotSetInversion { from_day } => {
                write!(f, "hot_set_inversion(from_day={from_day})")
            }
            ScenarioStage::Failover { from_day, server } => {
                write!(f, "failover(from_day={from_day},server={server})")
            }
            ScenarioStage::ChurnBurst {
                day,
                start_minute,
                duration_minutes,
                fraction,
            } => write!(
                f,
                "churn_burst(day={day},m={start_minute}+{duration_minutes},f={fraction})"
            ),
        }
    }
}

/// A seeded chain of [`ScenarioStage`]s. The default value is the empty
/// scenario (the untransformed steady-state stream).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioConfig {
    /// Scenario seed: all stage hashing mixes this in, independently of
    /// the trace's own seed.
    pub seed: u64,
    stages: Vec<ScenarioStage>,
}

impl ScenarioConfig {
    /// Creates an empty scenario with the given seed.
    pub fn new(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            stages: Vec::new(),
        }
    }

    /// Appends a stage to the chain (stages apply in insertion order).
    #[must_use]
    pub fn with_stage(mut self, stage: ScenarioStage) -> Self {
        self.stages.push(stage);
        self
    }

    /// The stage chain.
    pub fn stages(&self) -> &[ScenarioStage] {
        &self.stages
    }

    /// `true` when no stage is configured (identity transform).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// `true` when any stage can re-address a request to a *different*
    /// server (currently [`ScenarioStage::Failover`]). A single-server
    /// scoped stream cannot represent such a scenario faithfully —
    /// traffic migrating in from other servers' slices is invisible to
    /// it — so per-server simulation entry points reject these.
    pub fn moves_across_servers(&self) -> bool {
        self.stages
            .iter()
            .any(|s| matches!(s, ScenarioStage::Failover { .. }))
    }

    /// A compact human/report label, e.g.
    /// `"failover(from_day=2,server=0)+churn_burst(...)"`, or `"steady"`
    /// for the empty scenario.
    pub fn label(&self) -> String {
        if self.stages.is_empty() {
            return "steady".into();
        }
        self.stages
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Validates the scenario against an ensemble without compiling the
    /// capacity tables.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for out-of-range servers,
    /// fractions outside `[0, 1]`, zero amplification, or a failover with
    /// no survivor.
    pub fn validate(&self, ensemble: &EnsembleConfig) -> Result<(), SieveError> {
        CompiledScenario::compile(self, ensemble).map(|_| ())
    }
}

/// Per-stage hash domains, spaced so identical stages at different chain
/// positions draw independent chunk sets.
const STAGE_DOMAIN_STRIDE: u64 = 0x9E37_79B9;

/// A [`ScenarioConfig`] resolved against one ensemble's geometry:
/// per-volume capacities captured, parameters validated. The compiled
/// form is what the stream generator actually runs; [`Self::apply`] is
/// the whole per-request hot path.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    seed: u64,
    /// `(domain, stage)` pairs in application order.
    stages: Vec<(u64, ScenarioStage)>,
    /// Capacity in blocks per `[server][volume]` (same clamp as the
    /// generator's placement logic).
    caps: Vec<Vec<u64>>,
}

/// `fraction` as an integer hash threshold (hash < threshold ⇔ member).
fn threshold(fraction: f64) -> u64 {
    if fraction >= 1.0 {
        u64::MAX
    } else {
        (fraction.max(0.0) * u64::MAX as f64) as u64
    }
}

/// The chunk identity a request's start block belongs to, as a stable
/// hash key.
fn chunk_key(addr: BlockAddr) -> u64 {
    GlobalBlock::pack(
        addr.server,
        addr.volume,
        addr.block & !(SCENARIO_CHUNK_BLOCKS - 1),
    )
    .raw()
}

/// Clamps a start block so `start + len` stays inside `capacity`.
fn clamp_start(block: u64, len_blocks: u32, capacity: u64) -> u64 {
    block.min(capacity.saturating_sub(len_blocks as u64))
}

impl CompiledScenario {
    /// Resolves `config` against `ensemble`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] when a stage references a
    /// server the ensemble does not have, uses a fraction outside
    /// `[0, 1]`, an amplification of zero, or fails over the only server.
    pub fn compile(config: &ScenarioConfig, ensemble: &EnsembleConfig) -> Result<Self, SieveError> {
        let servers = ensemble.servers.len();
        for stage in &config.stages {
            match *stage {
                ScenarioStage::FlashCrowd {
                    amplification,
                    crowd_fraction,
                    ..
                } => {
                    if amplification == 0 {
                        return Err(SieveError::InvalidConfig(
                            "flash crowd amplification must be >= 1".into(),
                        ));
                    }
                    if !(0.0..=1.0).contains(&crowd_fraction) {
                        return Err(SieveError::InvalidConfig(
                            "flash crowd fraction must be in [0, 1]".into(),
                        ));
                    }
                }
                ScenarioStage::HotSetInversion { .. } => {}
                ScenarioStage::Failover { server, .. } => {
                    if (server as usize) >= servers {
                        return Err(SieveError::InvalidConfig(format!(
                            "failover server {server} out of range ({servers} servers)"
                        )));
                    }
                    if servers < 2 {
                        return Err(SieveError::InvalidConfig(
                            "failover needs at least one surviving server".into(),
                        ));
                    }
                }
                ScenarioStage::ChurnBurst { fraction, .. } => {
                    if !(0.0..=1.0).contains(&fraction) {
                        return Err(SieveError::InvalidConfig(
                            "churn fraction must be in [0, 1]".into(),
                        ));
                    }
                }
            }
        }
        // The same `.max(4096)` floor the generator's placement uses, so
        // remap targets land where generated requests could.
        let caps = ensemble
            .servers
            .iter()
            .map(|s| {
                s.volumes
                    .iter()
                    .map(|v| v.blocks(ensemble.scale).max(4096))
                    .collect()
            })
            .collect();
        Ok(CompiledScenario {
            seed: config.seed,
            stages: config
                .stages
                .iter()
                .enumerate()
                .map(|(i, s)| (1 + i as u64 * STAGE_DOMAIN_STRIDE, *s))
                .collect(),
            caps,
        })
    }

    /// `true` when the chain is empty (apply is the identity).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Seeded, domain-separated hash of one chunk key.
    fn hash(&self, domain: u64, key: u64) -> u64 {
        mix64(self.seed ^ mix64(domain).wrapping_add(mix64(key)))
    }

    fn cap(&self, addr: BlockAddr) -> u64 {
        self.caps[addr.server.as_usize()][addr.volume.as_usize()]
    }

    /// Transforms one request, appending 1..=k outputs to `out`.
    ///
    /// Pure in `(self, req)`: no internal state, so any chunking of the
    /// input sequence produces the same flattened output sequence. Always
    /// appends at least one request; never changes a timestamp.
    pub fn apply(&self, req: Request, out: &mut Vec<Request>) {
        if self.stages.is_empty() {
            out.push(req);
            return;
        }
        let mut req = req;
        let mut copies: u64 = 1;
        let day = req.timestamp.day().index();
        let minute = req.timestamp.minute().of_day();
        for &(domain, stage) in &self.stages {
            match stage {
                ScenarioStage::FlashCrowd {
                    day: d,
                    start_minute,
                    duration_minutes,
                    amplification,
                    crowd_fraction,
                } => {
                    if day == d
                        && minute >= start_minute
                        && minute < start_minute.saturating_add(duration_minutes)
                        && self.hash(domain, chunk_key(req.start)) < threshold(crowd_fraction)
                    {
                        copies = copies.saturating_mul(amplification as u64);
                    }
                }
                ScenarioStage::HotSetInversion { from_day } => {
                    if day >= from_day {
                        let cap = self.cap(req.start);
                        // Page-aligned midpoint keeps the ~94% page
                        // alignment statistic intact under the mirror.
                        let half = (cap / 2) & !(BLOCKS_PER_PAGE as u64 - 1);
                        if half > 0 {
                            let b = req.start.block;
                            let mirrored = if b < half { b + half } else { b - half };
                            req.start.block = clamp_start(mirrored, req.len_blocks, cap);
                        }
                    }
                }
                ScenarioStage::Failover { from_day, server } => {
                    if day >= from_day && req.start.server.index() == server {
                        let h = self.hash(domain, chunk_key(req.start));
                        // Consistent re-shard: all of a chunk's requests
                        // follow it to one survivor.
                        let survivors = self.caps.len() as u64 - 1;
                        let mut target = (h % survivors) as usize;
                        if target >= server as usize {
                            target += 1;
                        }
                        let h2 = mix64(h);
                        let vol = (h2 % self.caps[target].len() as u64) as usize;
                        let cap = self.caps[target][vol];
                        let slots = (cap / SCENARIO_CHUNK_BLOCKS).max(1);
                        let base = (mix64(h2) % slots) * SCENARIO_CHUNK_BLOCKS;
                        let block = clamp_start(
                            base + req.start.block % SCENARIO_CHUNK_BLOCKS,
                            req.len_blocks,
                            cap,
                        );
                        req.start = BlockAddr::new(
                            ServerId::new(target as u8),
                            VolumeId::new(vol as u8),
                            block,
                        );
                    }
                }
                ScenarioStage::ChurnBurst {
                    day: d,
                    start_minute,
                    duration_minutes,
                    fraction,
                } => {
                    if day == d
                        && minute >= start_minute
                        && minute < start_minute.saturating_add(duration_minutes)
                    {
                        let key = chunk_key(req.start);
                        if self.hash(domain, key) < threshold(fraction) {
                            let cap = self.cap(req.start);
                            let slots = (cap / SCENARIO_CHUNK_BLOCKS).max(1);
                            // Day-salted fresh location: churned chunks
                            // land on addresses no other day generates.
                            let fresh = mix64(self.hash(domain ^ 0xC1BE, key) ^ u64::from(d));
                            let base = (fresh % slots) * SCENARIO_CHUNK_BLOCKS;
                            req.start.block = clamp_start(
                                base + req.start.block % SCENARIO_CHUNK_BLOCKS,
                                req.len_blocks,
                                cap,
                            );
                        }
                    }
                }
            }
        }
        for _ in 0..copies {
            out.push(req);
        }
    }

    /// Applies the transform to a whole materialized sequence (the
    /// reference path differential tests compare streams against).
    pub fn apply_all(&self, requests: &[Request]) -> Vec<Request> {
        let mut out = Vec::with_capacity(requests.len());
        for &req in requests {
            self.apply(req, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticTrace;
    use sievestore_types::Day;

    fn tiny() -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(0xA11CE)).unwrap()
    }

    fn materialized(trace: &SyntheticTrace) -> Vec<Request> {
        let mut all = Vec::new();
        for d in 0..trace.days() {
            all.extend(trace.day_requests(Day::new(d)));
        }
        all
    }

    fn compile(trace: &SyntheticTrace, config: &ScenarioConfig) -> CompiledScenario {
        CompiledScenario::compile(config, trace.config()).unwrap()
    }

    #[test]
    fn empty_scenario_is_identity() {
        let trace = tiny();
        let all = materialized(&trace);
        let compiled = compile(&trace, &ScenarioConfig::default());
        assert!(compiled.is_empty());
        assert_eq!(compiled.apply_all(&all), all);
    }

    #[test]
    fn flash_crowd_amplifies_only_inside_the_window() {
        let trace = tiny();
        let all = materialized(&trace);
        let config = ScenarioConfig::new(3).with_stage(ScenarioStage::FlashCrowd {
            day: 1,
            start_minute: 600,
            duration_minutes: 120,
            amplification: 5,
            crowd_fraction: 0.2,
        });
        let out = compile(&trace, &config).apply_all(&all);
        assert!(out.len() > all.len(), "some requests must be amplified");
        // Outside the window the sequences are identical.
        let in_window = |r: &Request| {
            r.timestamp.day().index() == 1 && (600..720).contains(&r.timestamp.minute().of_day())
        };
        let base_outside: Vec<_> = all.iter().filter(|r| !in_window(r)).collect();
        let out_outside: Vec<_> = out.iter().filter(|r| !in_window(r)).collect();
        assert_eq!(base_outside, out_outside);
        // Amplified copies are adjacent and identical, so the sequence
        // stays timestamp-ordered.
        assert!(out.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn inversion_moves_blocks_but_preserves_time_and_capacity() {
        let trace = tiny();
        let all = materialized(&trace);
        let config =
            ScenarioConfig::new(9).with_stage(ScenarioStage::HotSetInversion { from_day: 1 });
        let compiled = compile(&trace, &config);
        let out = compiled.apply_all(&all);
        assert_eq!(out.len(), all.len());
        let mut moved = 0usize;
        for (a, b) in all.iter().zip(&out) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.start.server, b.start.server);
            assert_eq!(a.start.volume, b.start.volume);
            let cap = compiled.cap(b.start);
            assert!(b.start.block + b.len_blocks as u64 <= cap);
            if a.timestamp.day().index() >= 1 {
                if a.start.block != b.start.block {
                    moved += 1;
                }
            } else {
                assert_eq!(a.start.block, b.start.block, "day 0 must be untouched");
            }
        }
        assert!(moved > 0, "inversion must move blocks from day 1 on");
    }

    #[test]
    fn inversion_is_an_involution_away_from_clamps() {
        let trace = tiny();
        let config =
            ScenarioConfig::new(9).with_stage(ScenarioStage::HotSetInversion { from_day: 0 });
        let compiled = compile(&trace, &config);
        // A small request far from the volume end mirrors back to itself.
        let all = materialized(&trace);
        let mut round_trips = 0usize;
        for &req in all.iter().take(5000) {
            let cap = compiled.cap(req.start);
            if req.start.block + 512 > cap || req.len_blocks > 8 {
                continue;
            }
            let mut once = Vec::new();
            compiled.apply(req, &mut once);
            let mut twice = Vec::new();
            compiled.apply(once[0], &mut twice);
            assert_eq!(twice[0].start, req.start);
            round_trips += 1;
        }
        assert!(round_trips > 100, "need a meaningful sample");
    }

    #[test]
    fn failover_drains_the_failed_server_from_its_day() {
        let trace = tiny();
        let all = materialized(&trace);
        let config = ScenarioConfig::new(5).with_stage(ScenarioStage::Failover {
            from_day: 1,
            server: 0,
        });
        let compiled = compile(&trace, &config);
        let out = compiled.apply_all(&all);
        assert_eq!(out.len(), all.len());
        for req in &out {
            let day = req.timestamp.day().index();
            if day >= 1 {
                assert_ne!(
                    req.start.server.index(),
                    0,
                    "failed server must receive no traffic from day 1"
                );
            }
            let cap = compiled.cap(req.start);
            assert!(req.start.block + req.len_blocks as u64 <= cap);
        }
        // Day 0 still has server-0 traffic.
        assert!(out
            .iter()
            .any(|r| r.timestamp.day().index() == 0 && r.start.server.index() == 0));
    }

    #[test]
    fn churn_burst_redirects_a_fraction_inside_the_window() {
        let trace = tiny();
        let all = materialized(&trace);
        let config = ScenarioConfig::new(1).with_stage(ScenarioStage::ChurnBurst {
            day: 1,
            start_minute: 0,
            duration_minutes: 24 * 60,
            fraction: 0.5,
        });
        let compiled = compile(&trace, &config);
        let out = compiled.apply_all(&all);
        let changed = all
            .iter()
            .zip(&out)
            .filter(|(a, b)| a.start != b.start)
            .count();
        assert!(changed > 0, "a 0.5 fraction must move something");
        for (a, b) in all.iter().zip(&out) {
            if a.timestamp.day().index() != 1 {
                assert_eq!(a.start, b.start, "churn must stay inside its day");
            }
        }
    }

    #[test]
    fn stages_compose_in_order_and_labels_describe_them() {
        let trace = tiny();
        let config = ScenarioConfig::new(2)
            .with_stage(ScenarioStage::Failover {
                from_day: 1,
                server: 0,
            })
            .with_stage(ScenarioStage::HotSetInversion { from_day: 2 });
        assert_eq!(
            config.label(),
            "failover(from_day=1,server=0)+hot_set_inversion(from_day=2)"
        );
        assert_eq!(ScenarioConfig::default().label(), "steady");
        let all = materialized(&trace);
        let out = compile(&trace, &config).apply_all(&all);
        // Both stages act: no server-0 traffic after day 1, and day-2
        // blocks differ from the failover-only transform.
        assert!(out
            .iter()
            .filter(|r| r.timestamp.day().index() >= 1)
            .all(|r| r.start.server.index() != 0));
        let failover_only = compile(
            &trace,
            &ScenarioConfig::new(2).with_stage(ScenarioStage::Failover {
                from_day: 1,
                server: 0,
            }),
        )
        .apply_all(&all);
        assert_ne!(out, failover_only);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let trace = tiny();
        let bad = [
            ScenarioConfig::new(0).with_stage(ScenarioStage::Failover {
                from_day: 0,
                server: 99,
            }),
            ScenarioConfig::new(0).with_stage(ScenarioStage::FlashCrowd {
                day: 0,
                start_minute: 0,
                duration_minutes: 1,
                amplification: 0,
                crowd_fraction: 0.5,
            }),
            ScenarioConfig::new(0).with_stage(ScenarioStage::FlashCrowd {
                day: 0,
                start_minute: 0,
                duration_minutes: 1,
                amplification: 2,
                crowd_fraction: 1.5,
            }),
            ScenarioConfig::new(0).with_stage(ScenarioStage::ChurnBurst {
                day: 0,
                start_minute: 0,
                duration_minutes: 1,
                fraction: -0.1,
            }),
        ];
        for config in bad {
            assert!(config.validate(trace.config()).is_err(), "{config:?}");
        }
        assert!(ScenarioConfig::default().validate(trace.config()).is_ok());
    }

    #[test]
    fn same_seed_same_output_different_seed_differs() {
        let trace = tiny();
        let all = materialized(&trace);
        let stage = ScenarioStage::ChurnBurst {
            day: 1,
            start_minute: 0,
            duration_minutes: 24 * 60,
            fraction: 0.5,
        };
        let a = compile(&trace, &ScenarioConfig::new(1).with_stage(stage)).apply_all(&all);
        let b = compile(&trace, &ScenarioConfig::new(1).with_stage(stage)).apply_all(&all);
        let c = compile(&trace, &ScenarioConfig::new(2).with_stage(stage)).apply_all(&all);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
