//! The storage-ensemble model.
//!
//! [`EnsembleConfig`] mirrors Table 1 of the paper: 13 servers, 36 volumes,
//! 179 spindles, 6 449 GB. Each [`ServerConfig`] additionally carries the
//! *workload profile* that the synthetic generator uses to reproduce the
//! paper's trace statistics — daily access intensity, popularity skew
//! (hot-set share and Zipf exponent), hot-set drift, read fraction, diurnal
//! shape and burstiness.
//!
//! The profiles are calibrated so that the *ensemble* exhibits observation
//! O1 (top ~1 % of blocks take 14–53 % of daily accesses; ≥99 % of blocks
//! see ≤10 accesses/day) while individual servers, volumes and days vary
//! widely (observation O2): `Prxy` is extremely skewed, `Src1` nearly
//! uniform, `Web` differs per volume and `Stg` differs per day.

use sievestore_types::{SieveError, BLOCK_SIZE, GIB};

/// A proportional scale-down of the full-size ensemble.
///
/// Block universes, request counts and cache capacities all shrink by the
/// same denominator, which keeps every *ratio* the paper reports (hit
/// ratios, CDFs, policy rankings) invariant. Absolute device loads are
/// re-scaled back by [`Scale::upscale`] when compared against real SSD
/// ratings.
///
/// # Examples
///
/// ```
/// use sievestore_trace::Scale;
/// let s = Scale::new(256).unwrap();
/// assert_eq!(s.shrink(1024), 4);
/// assert_eq!(s.upscale(4.0), 1024.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale(u32);

impl Scale {
    /// Full-size (1:1) scale.
    pub const FULL: Scale = Scale(1);

    /// Creates a scale with the given denominator.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] if the denominator is zero.
    pub fn new(denominator: u32) -> Result<Self, SieveError> {
        if denominator == 0 {
            return Err(SieveError::InvalidConfig(
                "scale denominator must be nonzero".into(),
            ));
        }
        Ok(Scale(denominator))
    }

    /// Returns the denominator.
    pub const fn denominator(self) -> u32 {
        self.0
    }

    /// Shrinks a full-scale count, keeping at least 1 if the input was
    /// nonzero.
    pub fn shrink(self, full: u64) -> u64 {
        if full == 0 {
            0
        } else {
            (full / self.0 as u64).max(1)
        }
    }

    /// Re-scales a measured per-scale quantity back to full-scale units.
    pub fn upscale(self, scaled: f64) -> f64 {
        scaled * self.0 as f64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale(256)
    }
}

/// One volume of a server: its capacity plus the workload modifiers that
/// make volumes of the same server behave differently (Figure 3(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeConfig {
    /// Volume capacity in GB (full scale).
    pub size_gb: u64,
    /// Relative share of the server's requests routed to this volume.
    pub weight: f64,
    /// Multiplier on the server's hot-access share for this volume
    /// (1.0 = same skew as the server; <1 flattens, >1 sharpens).
    pub hot_share_mult: f64,
}

impl VolumeConfig {
    /// Creates a volume with neutral workload modifiers.
    pub fn new(size_gb: u64) -> Self {
        VolumeConfig {
            size_gb,
            weight: 1.0,
            hot_share_mult: 1.0,
        }
    }

    /// Sets the request-routing weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the hot-share multiplier.
    #[must_use]
    pub fn with_hot_share_mult(mut self, mult: f64) -> Self {
        self.hot_share_mult = mult;
        self
    }

    /// Volume capacity in 512-byte blocks at the given scale.
    pub fn blocks(&self, scale: Scale) -> u64 {
        scale.shrink(self.size_gb * GIB / BLOCK_SIZE as u64)
    }
}

/// One server of the ensemble: identity (Table 1) plus workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Short key used in the paper ("Usr", "Prxy", ...).
    pub key: String,
    /// Human-readable description ("User home dirs", ...).
    pub name: String,
    /// Spindle count (documentation only; reproduced from Table 1).
    pub spindles: u32,
    /// Volumes exported by this server.
    pub volumes: Vec<VolumeConfig>,
    /// Mean data accessed per full day, GB (full scale).
    pub daily_gb: f64,
    /// Base fraction of *block accesses* that target the hot set.
    pub hot_access_share: f64,
    /// Day-to-day modulation amplitude of the hot-access share.
    pub hot_share_amplitude: f64,
    /// Zipf exponent of popularity within the hot set.
    pub zipf_s: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Fraction of the popular-access share routed to the quasi-periodic
    /// *warm* tier (the rest goes to the Zipf head).
    pub warm_within_hot: f64,
    /// Target accesses per warm block per full day (sets warm-set size).
    pub warm_daily_accesses: f64,
    /// Head-set size as a fraction of the daily cold window.
    pub hot_set_frac: f64,
    /// Fraction of the hot window the hot set advances per day.
    pub drift_per_day: f64,
    /// Mean accesses per cold block (Poisson density of the cold window).
    pub cold_density: f64,
    /// Relative amplitude of the diurnal load wave (0 = flat).
    pub diurnal_amplitude: f64,
    /// Hour of peak diurnal load.
    pub diurnal_peak_hour: f64,
    /// Expected number of high-intensity burst minutes per day.
    pub burst_minutes_per_day: f64,
    /// Load multiplier during a burst minute.
    pub burst_multiplier: f64,
}

impl ServerConfig {
    /// Creates a server with neutral profile defaults; use the `with_*`
    /// builders to specialize.
    pub fn new(key: impl Into<String>, name: impl Into<String>, spindles: u32) -> Self {
        ServerConfig {
            key: key.into(),
            name: name.into(),
            spindles,
            volumes: Vec::new(),
            daily_gb: 10.0,
            hot_access_share: 0.35,
            hot_share_amplitude: 0.10,
            zipf_s: 0.90,
            read_fraction: 0.75,
            warm_within_hot: 0.55,
            warm_daily_accesses: 18.0,
            hot_set_frac: 0.004,
            drift_per_day: 0.08,
            cold_density: 0.85,
            diurnal_amplitude: 0.5,
            diurnal_peak_hour: 14.0,
            burst_minutes_per_day: 4.0,
            burst_multiplier: 6.0,
        }
    }

    /// Adds a volume.
    #[must_use]
    pub fn with_volume(mut self, volume: VolumeConfig) -> Self {
        self.volumes.push(volume);
        self
    }

    /// Sets mean GB accessed per full day.
    #[must_use]
    pub fn with_daily_gb(mut self, gb: f64) -> Self {
        self.daily_gb = gb;
        self
    }

    /// Sets the base hot-access share (popularity skew strength).
    #[must_use]
    pub fn with_hot_access_share(mut self, share: f64) -> Self {
        self.hot_access_share = share;
        self
    }

    /// Sets the day-to-day hot-share amplitude.
    #[must_use]
    pub fn with_hot_share_amplitude(mut self, amplitude: f64) -> Self {
        self.hot_share_amplitude = amplitude;
        self
    }

    /// Sets the in-head Zipf exponent.
    #[must_use]
    pub fn with_zipf_s(mut self, s: f64) -> Self {
        self.zipf_s = s;
        self
    }

    /// Sets the warm-tier share of popular accesses.
    #[must_use]
    pub fn with_warm_within_hot(mut self, fraction: f64) -> Self {
        self.warm_within_hot = fraction;
        self
    }

    /// Sets the warm per-block daily access target.
    #[must_use]
    pub fn with_warm_daily_accesses(mut self, accesses: f64) -> Self {
        self.warm_daily_accesses = accesses;
        self
    }

    /// Sets the read fraction.
    #[must_use]
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction;
        self
    }

    /// Sets the per-day hot-set drift fraction.
    #[must_use]
    pub fn with_drift_per_day(mut self, drift: f64) -> Self {
        self.drift_per_day = drift;
        self
    }

    /// Sets the burst profile.
    #[must_use]
    pub fn with_bursts(mut self, minutes_per_day: f64, multiplier: f64) -> Self {
        self.burst_minutes_per_day = minutes_per_day;
        self.burst_multiplier = multiplier;
        self
    }

    /// Total server capacity in GB (full scale).
    pub fn size_gb(&self) -> u64 {
        self.volumes.iter().map(|v| v.size_gb).sum()
    }

    /// Validates the profile parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] describing the first violated
    /// constraint (empty volume list, shares outside `(0, 1)`, nonpositive
    /// densities, ...).
    pub fn validate(&self) -> Result<(), SieveError> {
        let fail = |msg: String| Err(SieveError::InvalidConfig(msg));
        if self.volumes.is_empty() {
            return fail(format!("server {} has no volumes", self.key));
        }
        if !(0.0..1.0).contains(&self.hot_access_share) {
            return fail(format!(
                "server {}: hot_access_share must be in [0,1)",
                self.key
            ));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return fail(format!(
                "server {}: read_fraction must be in [0,1]",
                self.key
            ));
        }
        if self.daily_gb <= 0.0 {
            return fail(format!("server {}: daily_gb must be positive", self.key));
        }
        if self.cold_density <= 0.0 {
            return fail(format!(
                "server {}: cold_density must be positive",
                self.key
            ));
        }
        if self.hot_set_frac <= 0.0 || self.hot_set_frac >= 0.5 {
            return fail(format!(
                "server {}: hot_set_frac must be in (0,0.5)",
                self.key
            ));
        }
        if !(0.0..1.0).contains(&self.warm_within_hot) {
            return fail(format!(
                "server {}: warm_within_hot must be in [0,1)",
                self.key
            ));
        }
        if self.warm_daily_accesses <= 0.0 {
            return fail(format!(
                "server {}: warm_daily_accesses must be positive",
                self.key
            ));
        }
        if self
            .volumes
            .iter()
            .any(|v| v.weight <= 0.0 || v.size_gb == 0)
        {
            return fail(format!(
                "server {}: volumes need positive weight and size",
                self.key
            ));
        }
        Ok(())
    }
}

/// The whole ensemble: servers, trace length and scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleConfig {
    /// The servers (paper order).
    pub servers: Vec<ServerConfig>,
    /// Number of calendar days to generate (the paper analyzes 8).
    pub days: u16,
    /// Hour-of-day at which day 0 begins (the paper's trace starts at
    /// 5:00 pm, making day 1 a 7-hour outlier).
    pub first_day_start_hour: u32,
    /// Proportional scale-down denominator.
    pub scale: Scale,
    /// Master RNG seed; all generation is deterministic given this.
    pub seed: u64,
}

impl EnsembleConfig {
    /// The 13-server ensemble of Table 1 with calibrated workload profiles.
    ///
    /// # Examples
    ///
    /// ```
    /// use sievestore_trace::EnsembleConfig;
    /// let cfg = EnsembleConfig::msr_like();
    /// assert_eq!(cfg.servers.len(), 13);
    /// assert_eq!(cfg.total_volumes(), 36);
    /// assert_eq!(cfg.total_size_gb(), 6449);
    /// ```
    pub fn msr_like() -> Self {
        let v = VolumeConfig::new;
        let servers = vec![
            // key, name, spindles | volumes (GB) | profile
            ServerConfig::new("Usr", "User home dirs", 16)
                .with_volume(v(600).with_weight(3.0))
                .with_volume(v(500).with_weight(2.0))
                .with_volume(v(267).with_weight(1.0))
                .with_daily_gb(190.0)
                .with_hot_access_share(0.52)
                .with_warm_daily_accesses(20.0)
                .with_zipf_s(0.95),
            ServerConfig::new("Proj", "Project dirs", 44)
                .with_volume(v(600).with_weight(2.0))
                .with_volume(v(500).with_weight(2.0))
                .with_volume(v(400).with_weight(1.5))
                .with_volume(v(350).with_weight(1.0))
                .with_volume(v(244).with_weight(1.0))
                .with_daily_gb(280.0)
                .with_hot_access_share(0.38)
                .with_warm_daily_accesses(16.0)
                .with_zipf_s(0.85),
            ServerConfig::new("Prn", "Print server", 6)
                .with_volume(v(300).with_weight(2.0))
                .with_volume(v(152).with_weight(1.0))
                .with_daily_gb(60.0)
                .with_hot_access_share(0.32)
                .with_read_fraction(0.6),
            ServerConfig::new("Hm", "Hardware monitor", 6)
                .with_volume(v(20).with_weight(1.0))
                .with_volume(v(19).with_weight(1.0))
                .with_daily_gb(32.0)
                .with_hot_access_share(0.47)
                .with_warm_daily_accesses(20.0)
                .with_read_fraction(0.45),
            ServerConfig::new("Rsrch", "Research projects", 24)
                .with_volume(v(120).with_weight(1.5))
                .with_volume(v(100).with_weight(1.0))
                .with_volume(v(57).with_weight(0.7))
                .with_daily_gb(50.0)
                .with_hot_access_share(0.38),
            ServerConfig::new("Prxy", "Web proxy", 4)
                .with_volume(v(50).with_weight(3.0))
                .with_volume(v(39).with_weight(1.0))
                .with_daily_gb(140.0)
                .with_hot_access_share(0.90)
                .with_warm_daily_accesses(28.0)
                // A proxy's popularity is concentrated in a small object
                // head rather than a broad warm band.
                .with_warm_within_hot(0.25)
                .with_hot_share_amplitude(0.05)
                .with_zipf_s(1.10)
                .with_read_fraction(0.85),
            ServerConfig::new("Src1", "Source control", 12)
                .with_volume(v(250).with_weight(1.5))
                .with_volume(v(200).with_weight(1.2))
                .with_volume(v(105).with_weight(1.0))
                .with_daily_gb(240.0)
                .with_hot_access_share(0.14)
                .with_warm_daily_accesses(12.0)
                .with_hot_share_amplitude(0.04)
                .with_zipf_s(0.65),
            ServerConfig::new("Src2", "Source control", 14)
                .with_volume(v(160).with_weight(1.5))
                .with_volume(v(110).with_weight(1.0))
                .with_volume(v(85).with_weight(1.0))
                .with_daily_gb(120.0)
                .with_hot_access_share(0.38),
            ServerConfig::new("Stg", "Web staging", 6)
                .with_volume(v(70).with_weight(1.5))
                .with_volume(v(43).with_weight(1.0))
                .with_daily_gb(50.0)
                .with_hot_access_share(0.47)
                // Large day-to-day swing: skewed on some days, flat on others
                // (Figure 3(c)).
                .with_hot_share_amplitude(0.35),
            ServerConfig::new("Ts", "Terminal server", 2)
                .with_volume(v(22).with_weight(1.0))
                .with_daily_gb(12.0)
                .with_hot_access_share(0.47),
            ServerConfig::new("Web", "Web/SQL server", 17)
                // Volume 0 is much more skewed than volume 1 (Figure 3(b)).
                .with_volume(v(150).with_weight(2.0).with_hot_share_mult(1.8))
                .with_volume(v(130).with_weight(1.5).with_hot_share_mult(0.45))
                .with_volume(v(90).with_weight(1.0))
                .with_volume(v(71).with_weight(0.7))
                .with_daily_gb(120.0)
                .with_hot_access_share(0.47)
                .with_warm_daily_accesses(21.0)
                .with_read_fraction(0.8),
            ServerConfig::new("Mds", "Media server", 16)
                .with_volume(v(300).with_weight(1.5))
                .with_volume(v(209).with_weight(1.0))
                .with_daily_gb(60.0)
                .with_hot_access_share(0.32)
                .with_warm_daily_accesses(14.0)
                .with_read_fraction(0.9),
            ServerConfig::new("Wdev", "Test web server", 12)
                .with_volume(v(50).with_weight(1.5))
                .with_volume(v(36).with_weight(1.0))
                .with_volume(v(30).with_weight(1.0))
                .with_volume(v(20).with_weight(0.7))
                .with_daily_gb(32.0)
                .with_hot_access_share(0.42),
        ];
        EnsembleConfig {
            servers,
            days: 8,
            first_day_start_hour: 17,
            scale: Scale::default(),
            seed: 0x51EE_5704,
        }
    }

    /// A tiny two-server ensemble for fast tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        let servers = vec![
            ServerConfig::new("A", "Tiny server A", 2)
                .with_volume(VolumeConfig::new(64))
                .with_volume(VolumeConfig::new(32).with_hot_share_mult(0.5))
                .with_daily_gb(4.0)
                .with_hot_access_share(0.6),
            ServerConfig::new("B", "Tiny server B", 2)
                .with_volume(VolumeConfig::new(64))
                .with_daily_gb(3.0)
                .with_hot_access_share(0.2),
        ];
        EnsembleConfig {
            servers,
            days: 3,
            first_day_start_hour: 0,
            scale: Scale::new(64).expect("nonzero"),
            seed,
        }
    }

    /// Sets the scale denominator.
    #[must_use]
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the number of calendar days.
    #[must_use]
    pub fn with_days(mut self, days: u16) -> Self {
        self.days = days;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of volumes across servers.
    pub fn total_volumes(&self) -> usize {
        self.servers.iter().map(|s| s.volumes.len()).sum()
    }

    /// Total number of spindles across servers.
    pub fn total_spindles(&self) -> u32 {
        self.servers.iter().map(|s| s.spindles).sum()
    }

    /// Total ensemble capacity in GB (full scale).
    pub fn total_size_gb(&self) -> u64 {
        self.servers.iter().map(|s| s.size_gb()).sum()
    }

    /// Mean data accessed per full day across the ensemble, GB (full scale).
    pub fn total_daily_gb(&self) -> f64 {
        self.servers.iter().map(|s| s.daily_gb).sum()
    }

    /// Validates every server profile and the global parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::InvalidConfig`] for the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SieveError> {
        if self.servers.is_empty() {
            return Err(SieveError::InvalidConfig("ensemble has no servers".into()));
        }
        if self.servers.len() > 256 {
            return Err(SieveError::InvalidConfig(
                "ensemble exceeds 256 servers".into(),
            ));
        }
        if self.days == 0 {
            return Err(SieveError::InvalidConfig(
                "trace needs at least one day".into(),
            ));
        }
        if self.first_day_start_hour >= 24 {
            return Err(SieveError::InvalidConfig(
                "first_day_start_hour must be < 24".into(),
            ));
        }
        for server in &self.servers {
            server.validate()?;
            if server.volumes.len() > 16 {
                return Err(SieveError::InvalidConfig(format!(
                    "server {} exceeds 16 volumes",
                    server.key
                )));
            }
        }
        Ok(())
    }
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig::msr_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr_like_matches_table1_totals() {
        let cfg = EnsembleConfig::msr_like();
        assert_eq!(cfg.servers.len(), 13);
        assert_eq!(cfg.total_volumes(), 36);
        assert_eq!(cfg.total_spindles(), 179);
        assert_eq!(cfg.total_size_gb(), 6449);
        cfg.validate().expect("default config validates");
    }

    #[test]
    fn msr_like_per_server_sizes_match_table1() {
        let cfg = EnsembleConfig::msr_like();
        let expect: &[(&str, usize, u32, u64)] = &[
            ("Usr", 3, 16, 1367),
            ("Proj", 5, 44, 2094),
            ("Prn", 2, 6, 452),
            ("Hm", 2, 6, 39),
            ("Rsrch", 3, 24, 277),
            ("Prxy", 2, 4, 89),
            ("Src1", 3, 12, 555),
            ("Src2", 3, 14, 355),
            ("Stg", 2, 6, 113),
            ("Ts", 1, 2, 22),
            ("Web", 4, 17, 441),
            ("Mds", 2, 16, 509),
            ("Wdev", 4, 12, 136),
        ];
        for (i, (key, vols, spindles, gb)) in expect.iter().enumerate() {
            let s = &cfg.servers[i];
            assert_eq!(&s.key, key);
            assert_eq!(s.volumes.len(), *vols, "{key} volumes");
            assert_eq!(s.spindles, *spindles, "{key} spindles");
            assert_eq!(s.size_gb(), *gb, "{key} size");
        }
    }

    #[test]
    fn daily_intensity_is_near_paper_mean() {
        // The paper's introduction reports 1.5-2.5 TB of daily accesses
        // for the ensemble; the mean sits near the middle of that band.
        let total = EnsembleConfig::msr_like().total_daily_gb();
        assert!(
            (1200.0..=1500.0).contains(&total),
            "ensemble daily GB {total} should be within the paper's band"
        );
    }

    #[test]
    fn scale_shrinks_proportionally_and_keeps_nonzero() {
        let s = Scale::new(100).unwrap();
        assert_eq!(s.shrink(1000), 10);
        assert_eq!(s.shrink(5), 1);
        assert_eq!(s.shrink(0), 0);
        assert_eq!(Scale::FULL.shrink(7), 7);
        assert!(Scale::new(0).is_err());
    }

    #[test]
    fn volume_blocks_uses_scale() {
        let v = VolumeConfig::new(1); // 1 GB = 2^21 blocks
        assert_eq!(v.blocks(Scale::FULL), 1 << 21);
        assert_eq!(v.blocks(Scale::new(2).unwrap()), 1 << 20);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut cfg = EnsembleConfig::tiny(1);
        cfg.servers[0].hot_access_share = 1.2;
        assert!(cfg.validate().is_err());

        let mut cfg = EnsembleConfig::tiny(1);
        cfg.servers[0].volumes.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = EnsembleConfig::tiny(1);
        cfg.days = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = EnsembleConfig::tiny(1);
        cfg.first_day_start_hour = 24;
        assert!(cfg.validate().is_err());

        let mut cfg = EnsembleConfig::tiny(1);
        cfg.servers[1].cold_density = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let s = ServerConfig::new("X", "x", 1)
            .with_volume(VolumeConfig::new(10).with_weight(2.0))
            .with_daily_gb(5.0)
            .with_hot_access_share(0.5)
            .with_hot_share_amplitude(0.2)
            .with_zipf_s(1.3)
            .with_read_fraction(0.7)
            .with_drift_per_day(0.1)
            .with_bursts(2.0, 8.0);
        assert_eq!(s.size_gb(), 10);
        assert_eq!(s.burst_multiplier, 8.0);
        s.validate().expect("valid");
    }
}
