//! The synthetic ensemble-trace generator.
//!
//! Generates block-device request streams whose statistics reproduce the
//! properties the SieveStore paper's argument rests on:
//!
//! * **O1 (popularity skew)** — each server's daily accesses are a mixture
//!   of a small, Zipf-distributed *hot set* and a large, Poisson-sparse
//!   *cold window*. At the ensemble level the top ~1 % of daily blocks
//!   absorb a large access share while ≥99 % of blocks see ≤10 accesses.
//! * **O2 (skew variation)** — hot-access shares differ per server, get
//!   modulated per volume and per day, and hot sets *drift*: each day the
//!   hot window advances by a configured fraction of its size, so
//!   consecutive days overlap strongly while distant days diverge.
//! * **Load shape** — diurnal intensity waves, day-to-day volume
//!   variation, and rare, independent per-server burst minutes (the paper
//!   relies on correlated cross-server bursts being rare).
//!
//! Generation is deterministic given the [`EnsembleConfig`] seed, and
//! day-partitioned: [`SyntheticTrace::day_requests`] materializes one
//! calendar day at a time, in timestamp order.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};
use sievestore_types::{
    BlockAddr, Day, Micros, Request, RequestKind, ServerId, VolumeId, BLOCKS_PER_PAGE, BLOCK_SIZE,
    GIB,
};

use crate::model::{EnsembleConfig, ServerConfig};
use crate::zipf::Zipf;

/// Request-size mixture (in 512-byte blocks) with its sampling weights.
///
/// Hot accesses skew small (index/metadata pages); cold accesses skew large
/// (scans), which matches the paper's ~11 KiB mean request and lets the
/// per-block popularity skew stay sharp.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeMix {
    sizes: Vec<u32>,
    cumulative: Vec<f64>,
    mean: f64,
}

impl SizeMix {
    /// Builds a mixture from `(size_in_blocks, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, any size is zero or any weight is
    /// non-positive.
    pub fn new(entries: &[(u32, f64)]) -> Self {
        assert!(!entries.is_empty(), "size mixture must be nonempty");
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        let mut sizes = Vec::with_capacity(entries.len());
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for &(size, weight) in entries {
            assert!(size > 0, "request size must be positive");
            assert!(weight > 0.0, "mixture weight must be positive");
            acc += weight / total;
            sizes.push(size);
            cumulative.push(acc);
            mean += size as f64 * weight / total;
        }
        // Guard against floating-point undershoot at the end.
        *cumulative.last_mut().expect("nonempty") = 1.0;
        SizeMix {
            sizes,
            cumulative,
            mean,
        }
    }

    /// The default mixture for hot (high-reuse) requests: mean ~4 blocks.
    pub fn hot_default() -> Self {
        SizeMix::new(&[(1, 0.15), (2, 0.15), (4, 0.25), (8, 0.35), (16, 0.10)])
    }

    /// The default mixture for cold (scan-like) requests: mean ~27 blocks,
    /// giving the ensemble the paper's ~11 KiB mean request size.
    pub fn cold_default() -> Self {
        SizeMix::new(&[
            (4, 0.08),
            (8, 0.37),
            (16, 0.20),
            (32, 0.15),
            (64, 0.12),
            (128, 0.06),
            (256, 0.02),
        ])
    }

    /// Mean size in blocks.
    pub fn mean_blocks(&self) -> f64 {
        self.mean
    }

    /// Draws one size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u = rng.random::<f64>();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.sizes.len() - 1);
        self.sizes[idx]
    }
}

/// Plan for one (server, day): resolved windows, shares and rates.
#[derive(Debug, Clone)]
struct ServerDayPlan {
    server: ServerId,
    /// Per-volume state.
    volumes: Vec<VolumeDayPlan>,
    /// Fraction of requests that are reads.
    read_fraction: f64,
    /// Per-minute-of-day relative weights (cumulative, over active minutes).
    minute_cum: Vec<f64>,
    /// First active minute-of-day (nonzero only on a partial first day).
    first_minute: u32,
}

/// Hot/warm-set geometry: popularity ranks address 16-block *chunks*, and
/// a per-day map assigns each chunk rank a concrete block region. Ranks
/// keep their region across days unless a daily churn event remaps them to
/// a fresh region, so the popular set's identity persists (the paper's
/// "significant overlap in successive days") while drifting over longer
/// separations.
const HOT_CHUNK_BLOCKS: u64 = 16;

/// Placement parameters for one tier's chunk map (see [`HOT_CHUNK_BLOCKS`]).
#[derive(Debug, Clone, Copy)]
struct TierGeometry {
    /// Seed domain separating tiers.
    domain: u64,
    /// Volume index within the server.
    volume_idx: usize,
    /// Number of popularity-ranked chunks.
    chunks: u64,
    /// First block of the tier's pool.
    pool_base: u64,
    /// Blocks per remap region within the pool.
    span: u64,
}

#[derive(Debug, Clone)]
struct VolumeDayPlan {
    volume: VolumeId,
    /// Volume capacity in blocks (scaled).
    capacity: u64,
    /// Randomly-sampled (head + cold) requests to emit.
    random_requests: u64,
    /// Probability that a random request targets the head (request-level).
    p_req_head: f64,
    /// Base block of each head chunk, indexed by popularity rank.
    head_map: Vec<u64>,
    /// Zipf sampler over head chunk ranks.
    zipf: Zipf,
    /// Base block of each warm chunk.
    warm_map: Vec<u64>,
    /// Mean scheduled requests per warm chunk this day (each request
    /// covers the whole chunk, so this is also the per-block count).
    warm_requests_per_chunk: f64,
    /// Start of the day's cold window.
    cold_start: u64,
    /// Cold window length in blocks.
    cold_len: u64,
}

/// A deterministic synthetic ensemble trace.
///
/// # Examples
///
/// ```
/// use sievestore_trace::{EnsembleConfig, SyntheticTrace};
/// use sievestore_types::Day;
///
/// let trace = SyntheticTrace::new(EnsembleConfig::tiny(42)).unwrap();
/// let day0 = trace.day_requests(Day::new(0));
/// assert!(!day0.is_empty());
/// // Timestamps are sorted and within the day.
/// assert!(day0.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    config: EnsembleConfig,
    hot_mix: SizeMix,
    cold_mix: SizeMix,
}

impl SyntheticTrace {
    /// Creates a generator for the given ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`sievestore_types::SieveError::InvalidConfig`] if the
    /// configuration fails validation.
    pub fn new(config: EnsembleConfig) -> Result<Self, sievestore_types::SieveError> {
        config.validate()?;
        Ok(SyntheticTrace {
            config,
            hot_mix: SizeMix::hot_default(),
            cold_mix: SizeMix::cold_default(),
        })
    }

    /// Returns the generator's configuration.
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// Returns the number of calendar days the trace spans.
    pub fn days(&self) -> u16 {
        self.config.days
    }

    /// Deterministic sub-seed for a (domain, day, server) triple.
    fn sub_seed(&self, domain: u64, day: u16, server: usize) -> u64 {
        // SplitMix64-style mixing of the master seed with the coordinates.
        let mut z = self
            .config
            .seed
            .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((day as u64) << 32)
            .wrapping_add(server as u64)
            .wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Day-to-day intensity multiplier for a server. Combines an
    /// ensemble-wide wave with per-server noise so daily totals span the
    /// paper's 335–1190 GB range around the 685 GB mean.
    fn day_multiplier(&self, day: u16, server: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(self.sub_seed(1, day, server));
        let mut ensemble = SmallRng::seed_from_u64(self.sub_seed(2, day, usize::MAX));
        // Shared component: smooth wave over the week, +/- 25 %.
        let shared = 1.0 + 0.25 * (day as f64 * 1.9 + ensemble.random::<f64>() * 0.5).sin();
        // Per-server component: log-uniform in [0.7, 1.45].
        let noise = 0.7 * (1.45f64 / 0.7).powf(rng.random::<f64>());
        (shared * noise).clamp(0.5, 1.8)
    }

    /// Effective hot-access share (block-level) for a server on a day.
    fn hot_share(&self, server: &ServerConfig, server_idx: usize, day: u16) -> f64 {
        let mut rng = SmallRng::seed_from_u64(self.sub_seed(3, day, server_idx));
        // Deterministic per-day phase; a sine plus noise produces both the
        // smooth drift and the abrupt day-to-day changes of Figure 3(c).
        let wave = (day as f64 * 2.39 + server_idx as f64 * 0.77).sin();
        let noise = rng.random::<f64>() * 2.0 - 1.0;
        let share =
            server.hot_access_share + server.hot_share_amplitude * (0.6 * wave + 0.4 * noise);
        share.clamp(0.02, 0.97)
    }

    /// Builds the per-minute cumulative load profile for a (server, day).
    fn minute_profile(
        &self,
        server: &ServerConfig,
        server_idx: usize,
        day: u16,
    ) -> (Vec<f64>, u32) {
        let first_minute = if day == 0 {
            self.config.first_day_start_hour * 60
        } else {
            0
        };
        let mut rng = SmallRng::seed_from_u64(self.sub_seed(4, day, server_idx));
        let minutes = 24 * 60 - first_minute;
        let mut weights = Vec::with_capacity(minutes as usize);
        // Choose this day's burst minutes up front.
        let bursts = server.burst_minutes_per_day;
        let mut burst_set = std::collections::HashSet::new();
        let n_bursts = {
            // Poisson-ish: floor plus Bernoulli remainder.
            let base = bursts.floor() as u32;
            let extra = rng.random::<f64>() < bursts.fract();
            base + extra as u32
        };
        while (burst_set.len() as u32) < n_bursts.min(minutes) {
            burst_set.insert(rng.random_range(0..minutes));
        }
        for m in 0..minutes {
            let minute_of_day = first_minute + m;
            let hour = minute_of_day as f64 / 60.0;
            let wave = 1.0
                + server.diurnal_amplitude
                    * ((hour - server.diurnal_peak_hour) / 24.0 * std::f64::consts::TAU).cos();
            let jitter = 0.85 + 0.3 * rng.random::<f64>();
            let burst = if burst_set.contains(&m) {
                server.burst_multiplier
            } else {
                1.0
            };
            weights.push(wave.max(0.05) * jitter * burst);
        }
        // Cumulative-normalize.
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        (weights, first_minute)
    }

    /// Builds the rank→chunk-base map for one (tier, volume, day).
    ///
    /// Every rank's home region is at `pool_base`. Each day, each rank
    /// independently gets remapped to that day's fresh region with
    /// probability `drift_per_day`; a rank's block is the one from its
    /// *most recent* remap. Consecutive days therefore share `1 - drift`
    /// of the popular set (identity included — the heavy head stays put
    /// unless churned), while distant days diverge geometrically, matching
    /// observation O2.
    fn chunk_map(&self, tier: TierGeometry, server_idx: usize, day: u16) -> Vec<u64> {
        let TierGeometry {
            domain,
            volume_idx,
            chunks,
            pool_base,
            span,
        } = tier;
        let churn = self.config.servers[server_idx]
            .drift_per_day
            .clamp(0.0, 1.0);
        let threshold = (churn * u64::MAX as f64) as u64;
        let mut map = Vec::with_capacity(chunks as usize);
        for rank in 0..chunks {
            let mut base = pool_base + (rank * HOT_CHUNK_BLOCKS) % span; // home
            for d in (1..=day as u64).rev() {
                let h = self.sub_seed(
                    domain + volume_idx as u64 * 131 + rank * 1009,
                    d as u16,
                    server_idx,
                );
                if h < threshold {
                    base = pool_base + d * span + (rank * HOT_CHUNK_BLOCKS) % span;
                    break;
                }
            }
            map.push(base);
        }
        map
    }

    /// Resolves the full plan for a (server, day).
    fn server_day_plan(&self, server_idx: usize, day: u16) -> ServerDayPlan {
        let server = &self.config.servers[server_idx];
        let scale = self.config.scale;
        let day_mult = self.day_multiplier(day, server_idx);
        let day_fraction = if day == 0 {
            (24.0 - self.config.first_day_start_hour as f64) / 24.0
        } else {
            1.0
        };
        // Target block accesses for the day (scaled).
        let target_blocks = (server.daily_gb * day_mult * day_fraction * (GIB as f64)
            / BLOCK_SIZE as f64
            / scale.denominator() as f64)
            .max(1.0);

        let p_hot_blocks = self.hot_share(server, server_idx, day);
        let mh = self.hot_mix.mean_blocks();
        let mc = self.cold_mix.mean_blocks();
        let total_weight: f64 = server.volumes.iter().map(|v| v.weight).sum();

        let mut volumes = Vec::with_capacity(server.volumes.len());
        for (v_idx, vol) in server.volumes.iter().enumerate() {
            let vshare = vol.weight / total_weight;
            let capacity = vol.blocks(scale).max(4096);
            let vol_target = target_blocks * vshare;

            // This volume's effective popular-access share (the per-volume
            // multiplier is how Figure 3(b)'s volume-to-volume skew
            // variation arises), split between the Zipf *head* and the
            // quasi-periodic *warm* tier.
            let popular_v = (p_hot_blocks * vol.hot_share_mult).clamp(0.0, 0.95);
            let warm_share = popular_v * server.warm_within_hot;
            let head_share = popular_v - warm_share;

            // Warm tier: full-chunk requests at a target per-block daily
            // count, scheduled quasi-periodically (long, regular gaps that
            // defeat LRU churn but accumulate within a sieving window).
            let warm_target_blocks = vol_target * warm_share;
            let warm_count = (server.warm_daily_accesses * day_fraction).max(1.0);
            let warm_chunks =
                ((warm_target_blocks / (warm_count * HOT_CHUNK_BLOCKS as f64)).round() as u64)
                    .max(2);

            // Random loop handles head + cold.
            let p_req_head = {
                // Request-level head probability among random requests.
                let head_blocks = vol_target * head_share;
                let cold_blocks = vol_target * (1.0 - popular_v);
                let h = head_blocks / mh;
                let c = cold_blocks / mc;
                if h + c > 0.0 {
                    h / (h + c)
                } else {
                    0.0
                }
            };
            let mean_req_blocks = p_req_head * mh + (1.0 - p_req_head) * mc;
            let random_requests =
                ((vol_target * (1.0 - warm_share)) / mean_req_blocks).ceil() as u64;

            // Cold windows live in the upper half of the volume (the lower
            // half holds the head and warm pools) and advance day by day so
            // most cold blocks are fresh each day (compulsory misses
            // dominate, as in the trace).
            let vol_cold_blocks = random_requests as f64 * (1.0 - p_req_head) * mc;
            let cold_len =
                ((vol_cold_blocks / server.cold_density) as u64).clamp(256, capacity / 3);
            let cold_region = capacity / 2;
            let cold_start = {
                let step = cold_len + cold_len / 3;
                cold_region + (day as u64 * step) % (cold_region.saturating_sub(cold_len)).max(1)
            };

            // Pools: the lower half of the volume, one quarter each for the
            // head and warm tiers, split into one home region plus one
            // fresh remap region per day.
            let span_of = |quarter: u64| {
                ((quarter / (self.config.days as u64 + 1)) / HOT_CHUNK_BLOCKS * HOT_CHUNK_BLOCKS)
                    .max(HOT_CHUNK_BLOCKS)
            };
            let head_span = span_of(capacity / 4);
            let warm_span = span_of(capacity / 4);
            let head_len = ((cold_len as f64 * server.hot_set_frac) as u64)
                .max(4 * HOT_CHUNK_BLOCKS)
                .min(head_span);
            let head_chunks = (head_len / HOT_CHUNK_BLOCKS).max(1);
            let warm_chunks = warm_chunks.min((warm_span / HOT_CHUNK_BLOCKS).max(1));
            let head_map = self.chunk_map(
                TierGeometry {
                    domain: 6,
                    volume_idx: v_idx,
                    chunks: head_chunks,
                    pool_base: 0,
                    span: head_span,
                },
                server_idx,
                day,
            );
            let warm_map = self.chunk_map(
                TierGeometry {
                    domain: 7_000_003,
                    volume_idx: v_idx,
                    chunks: warm_chunks,
                    pool_base: capacity / 4,
                    span: warm_span,
                },
                server_idx,
                day,
            );

            volumes.push(VolumeDayPlan {
                volume: VolumeId::new(v_idx as u8),
                capacity,
                random_requests,
                p_req_head,
                head_map,
                zipf: Zipf::new(head_chunks, server.zipf_s).expect("validated exponent"),
                warm_map,
                warm_requests_per_chunk: warm_count,
                cold_start,
                cold_len,
            });
        }

        let (minute_cum, first_minute) = self.minute_profile(server, server_idx, day);
        ServerDayPlan {
            server: ServerId::new(server_idx as u8),
            volumes,
            read_fraction: server.read_fraction,
            minute_cum,
            first_minute,
        }
    }

    /// Response-time model: seek+rotation base, queueing noise and a
    /// transfer term (~100 MB/s streaming).
    fn response_time<R: Rng + ?Sized>(rng: &mut R, len: u32) -> Micros {
        let base_us = 3_000.0;
        let queue_us = -2_000.0 * (1.0 - rng.random::<f64>()).ln();
        let xfer_us = len as f64 * BLOCK_SIZE as f64 / 100.0e6 * 1.0e6;
        Micros::new((base_us + queue_us + xfer_us) as u64)
    }

    /// Generates all requests of one server for one day, in time order.
    pub(crate) fn server_day_requests(&self, server_idx: usize, day: Day) -> Vec<Request> {
        let plan = self.server_day_plan(server_idx, day.index());
        let mut rng = SmallRng::seed_from_u64(self.sub_seed(5, day.index(), server_idx));
        let day_base = day.start();
        let capacity_hint: u64 = plan.volumes.iter().map(|v| v.random_requests).sum();
        let mut out = Vec::with_capacity(capacity_hint as usize);

        for vol in &plan.volumes {
            // Head + cold: randomly sampled through the diurnal profile.
            for _ in 0..vol.random_requests {
                let u = rng.random::<f64>();
                let slot = partition_point(&plan.minute_cum, u);
                let minute_of_day = plan.first_minute + slot as u32;
                let offset_us = rng.random_range(0..Micros::PER_MINUTE);
                let timestamp =
                    day_base + Micros::new(minute_of_day as u64 * Micros::PER_MINUTE + offset_us);

                // Head requests stay inside one 16-block chunk so the
                // popularity rank maps to a contiguous block range.
                let head = rng.random::<f64>() < vol.p_req_head;
                let (len, start_block) = if head {
                    let len = self.hot_mix.sample(&mut rng).min(HOT_CHUNK_BLOCKS as u32);
                    let rank = vol.zipf.sample(&mut rng);
                    let base = vol.head_map[(rank - 1) as usize];
                    let slack = HOT_CHUNK_BLOCKS - len as u64;
                    let offset = if slack == 0 {
                        0
                    } else {
                        rng.random_range(0..=slack)
                    };
                    (len, base + offset)
                } else {
                    let len = self.cold_mix.sample(&mut rng);
                    let span = vol.cold_len.saturating_sub(len as u64).max(1);
                    let pos = rng.random_range(0..span);
                    (len, vol.cold_start + pos)
                };
                // ~94 % of requests are 4 KiB-aligned (the paper reports
                // ~6 % unaligned).
                let start_block = if rng.random::<f64>() < 0.94 {
                    start_block - start_block % BLOCKS_PER_PAGE as u64
                } else {
                    start_block
                };
                let start_block = start_block.min(vol.capacity.saturating_sub(len as u64));

                let kind = if rng.random::<f64>() < plan.read_fraction {
                    RequestKind::Read
                } else {
                    RequestKind::Write
                };
                let response = Self::response_time(&mut rng, len);
                let start = BlockAddr::new(plan.server, vol.volume, start_block);
                out.push(Request::new(timestamp, start, len, kind).with_response_time(response));
            }

            // Warm tier: each chunk is re-read in full at quasi-periodic
            // times with long (~1.5-2 h), slightly jittered gaps — the
            // block-device-level reuse pattern left over once a host
            // buffer cache has absorbed all short-distance reuse.
            let active_start = Micros::new(plan.first_minute as u64 * Micros::PER_MINUTE);
            let active_span = Micros::from_days(1) - active_start;
            for chunk in &vol.warm_map {
                let n = {
                    let base = vol.warm_requests_per_chunk.floor() as u64;
                    let extra = rng.random::<f64>() < vol.warm_requests_per_chunk.fract();
                    (base + extra as u64).max(1)
                };
                let period = active_span.as_u64() / n;
                let phase = rng.random_range(0..period.max(1));
                for i in 0..n {
                    let jitter = (rng.random::<f64>() - 0.5) * 0.2 * period as f64;
                    let at = (i * period + phase).saturating_add_signed(jitter as i64);
                    let timestamp =
                        day_base + active_start + Micros::new(at.min(active_span.as_u64() - 1));
                    let kind = if rng.random::<f64>() < plan.read_fraction {
                        RequestKind::Read
                    } else {
                        RequestKind::Write
                    };
                    let len = HOT_CHUNK_BLOCKS as u32;
                    let response = Self::response_time(&mut rng, len);
                    let start = BlockAddr::new(plan.server, vol.volume, *chunk);
                    out.push(
                        Request::new(timestamp, start, len, kind).with_response_time(response),
                    );
                }
            }
        }
        crate::stream::sort_requests(&mut out);
        out
    }

    /// Generates every request of one calendar day, across all servers, in
    /// timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if `day` is outside the configured trace length.
    pub fn day_requests(&self, day: Day) -> Vec<Request> {
        assert!(
            day.index() < self.config.days,
            "day {} outside trace of {} days",
            day.index(),
            self.config.days
        );
        let mut all: Vec<Request> = Vec::new();
        for server_idx in 0..self.config.servers.len() {
            all.extend(self.server_day_requests(server_idx, day));
        }
        crate::stream::sort_requests(&mut all);
        all
    }

    /// Generates the requests of one server on one day (used by the
    /// per-server cache experiments and the skew analyses).
    ///
    /// # Panics
    ///
    /// Panics if `server_idx` or `day` is out of range.
    pub fn server_day(&self, server_idx: usize, day: Day) -> Vec<Request> {
        assert!(
            server_idx < self.config.servers.len(),
            "server out of range"
        );
        assert!(day.index() < self.config.days, "day out of range");
        self.server_day_requests(server_idx, day)
    }

    /// Iterates over every request of the whole trace in time order,
    /// materializing one day at a time.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            trace: self,
            day: 0,
            buffer: Vec::new(),
            pos: 0,
        }
    }
}

/// Iterator over all requests of a [`SyntheticTrace`], day by day.
///
/// Produced by [`SyntheticTrace::iter`].
#[derive(Debug)]
pub struct TraceIter<'a> {
    trace: &'a SyntheticTrace,
    day: u16,
    buffer: Vec<Request>,
    pos: usize,
}

impl Iterator for TraceIter<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            if self.pos < self.buffer.len() {
                let req = self.buffer[self.pos];
                self.pos += 1;
                return Some(req);
            }
            if self.day >= self.trace.config.days {
                return None;
            }
            self.buffer = self.trace.day_requests(Day::new(self.day));
            self.pos = 0;
            self.day += 1;
        }
    }
}

/// Index of the first cumulative entry `>= u` (branchless binary search).
fn partition_point(cumulative: &[f64], u: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = cumulative.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cumulative[mid] < u {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Scale;
    use std::collections::HashMap;

    fn tiny_trace(seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(seed)).unwrap()
    }

    #[test]
    fn size_mix_means_are_calibrated() {
        let hot = SizeMix::hot_default();
        let cold = SizeMix::cold_default();
        assert!(
            (3.0..6.0).contains(&hot.mean_blocks()),
            "{}",
            hot.mean_blocks()
        );
        assert!(
            (20.0..32.0).contains(&cold.mean_blocks()),
            "{}",
            cold.mean_blocks()
        );
    }

    #[test]
    fn size_mix_samples_only_configured_sizes() {
        let mix = SizeMix::new(&[(3, 1.0), (9, 2.0)]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..1000 {
            let s = mix.sample(&mut rng);
            assert!(s == 3 || s == 9);
        }
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_size_mix_panics() {
        let _ = SizeMix::new(&[]);
    }

    #[test]
    fn day_requests_sorted_and_within_day() {
        let trace = tiny_trace(7);
        for d in 0..trace.days() {
            let day = Day::new(d);
            let reqs = trace.day_requests(day);
            assert!(!reqs.is_empty(), "day {d} empty");
            assert!(reqs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
            assert!(reqs.iter().all(|r| r.timestamp >= day.start()));
            assert!(reqs.iter().all(|r| r.timestamp < day.end()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_trace(99).day_requests(Day::new(1));
        let b = tiny_trace(99).day_requests(Day::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_trace(1).day_requests(Day::new(1));
        let b = tiny_trace(2).day_requests(Day::new(1));
        assert_ne!(a, b);
    }

    #[test]
    fn partial_first_day_starts_at_configured_hour() {
        let mut cfg = EnsembleConfig::tiny(3);
        cfg.first_day_start_hour = 17;
        let trace = SyntheticTrace::new(cfg).unwrap();
        let day0 = trace.day_requests(Day::new(0));
        let first = day0.first().unwrap().timestamp;
        assert!(first >= Micros::from_hours(17));
        // Later days start from midnight.
        let day1 = trace.day_requests(Day::new(1));
        let first1 = day1.first().unwrap().timestamp - Day::new(1).start();
        assert!(first1 < Micros::from_hours(2));
    }

    #[test]
    fn requests_stay_within_volume_capacity() {
        let trace = tiny_trace(11);
        let cfg = trace.config();
        for d in 0..trace.days() {
            for req in trace.day_requests(Day::new(d)) {
                let server = &cfg.servers[req.start.server.as_usize()];
                let vol = &server.volumes[req.start.volume.as_usize()];
                let cap = vol.blocks(cfg.scale);
                assert!(
                    req.start.block + req.len_blocks as u64 <= cap,
                    "request {req} exceeds volume capacity {cap}"
                );
            }
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let trace = tiny_trace(5);
        let reqs = trace.day_requests(Day::new(1));
        let reads = reqs.iter().filter(|r| r.kind.is_read()).count();
        let frac = reads as f64 / reqs.len() as f64;
        assert!((0.65..0.85).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn most_requests_are_page_aligned() {
        let trace = tiny_trace(5);
        let reqs = trace.day_requests(Day::new(1));
        let aligned = reqs
            .iter()
            .filter(|r| r.start.block % BLOCKS_PER_PAGE as u64 == 0)
            .count();
        let frac = aligned as f64 / reqs.len() as f64;
        assert!(frac > 0.88, "aligned fraction {frac}");
        assert!(frac < 0.99, "some requests must be unaligned, got {frac}");
    }

    #[test]
    fn response_times_are_plausible() {
        let trace = tiny_trace(5);
        for req in trace.day_requests(Day::new(0)) {
            assert!(req.response_time.as_u64() >= 3_000);
            assert!(
                req.response_time.as_u64() < 200_000,
                "{}",
                req.response_time
            );
        }
    }

    #[test]
    fn hot_blocks_repeat_and_cold_blocks_mostly_do_not() {
        let trace = tiny_trace(21);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for req in trace.day_requests(Day::new(1)) {
            for b in req.blocks() {
                *counts.entry(b.raw()).or_insert(0) += 1;
            }
        }
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().map(|&c| c as u64).sum();
        let top1_count = (sorted.len() / 100).max(1);
        let top1: u64 = sorted[..top1_count].iter().map(|&c| c as u64).sum();
        let share = top1 as f64 / total as f64;
        // Tiny ensemble is heavily hot-weighted; skew must be pronounced.
        assert!(share > 0.10, "top-1% share {share}");
        // A large majority of blocks should be touched <= 4 times.
        let low = sorted.iter().filter(|&&c| c <= 4).count();
        assert!(
            low as f64 / sorted.len() as f64 > 0.9,
            "low-reuse fraction {}",
            low as f64 / sorted.len() as f64
        );
    }

    #[test]
    fn hot_sets_drift_but_overlap_between_consecutive_days() {
        let trace = tiny_trace(33);
        let hot_set = |day: u16| {
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for req in trace.day_requests(Day::new(day)) {
                for b in req.blocks() {
                    *counts.entry(b.raw()).or_insert(0) += 1;
                }
            }
            let mut v: Vec<(u64, u32)> = counts.into_iter().collect();
            v.sort_unstable_by_key(|&(_, count)| std::cmp::Reverse(count));
            let n = (v.len() / 100).max(10);
            v.truncate(n);
            v.into_iter()
                .map(|(b, _)| b)
                .collect::<std::collections::HashSet<u64>>()
        };
        let d1 = hot_set(1);
        let d2 = hot_set(2);
        let inter = d1.intersection(&d2).count() as f64;
        let overlap = inter / d1.len().min(d2.len()) as f64;
        assert!(overlap > 0.2, "consecutive-day hot overlap {overlap}");
        assert!(overlap < 0.999, "hot sets must drift, overlap {overlap}");
    }

    #[test]
    fn iterator_covers_all_days_in_order() {
        let trace = tiny_trace(13);
        let total: usize = (0..trace.days())
            .map(|d| trace.day_requests(Day::new(d)).len())
            .sum();
        let via_iter: Vec<Request> = trace.iter().collect();
        assert_eq!(via_iter.len(), total);
        assert!(via_iter
            .windows(2)
            .all(|w| w[0].timestamp.day() <= w[1].timestamp.day()));
    }

    #[test]
    fn per_server_and_ensemble_views_agree() {
        let trace = tiny_trace(17);
        let day = Day::new(1);
        let merged = trace.day_requests(day);
        let split: usize = (0..trace.config().servers.len())
            .map(|s| trace.server_day(s, day).len())
            .sum();
        assert_eq!(merged.len(), split);
    }

    #[test]
    fn scale_reduces_volume() {
        let coarse =
            SyntheticTrace::new(EnsembleConfig::tiny(1).with_scale(Scale::new(64).unwrap()))
                .unwrap();
        let fine =
            SyntheticTrace::new(EnsembleConfig::tiny(1).with_scale(Scale::new(256).unwrap()))
                .unwrap();
        let c = coarse.day_requests(Day::new(1)).len();
        let f = fine.day_requests(Day::new(1)).len();
        assert!(c > 2 * f, "coarse {c} vs fine {f}");
    }

    #[test]
    fn partition_point_finds_first_ge() {
        let cum = [0.25, 0.5, 0.75, 1.0];
        assert_eq!(partition_point(&cum, 0.0), 0);
        assert_eq!(partition_point(&cum, 0.25), 0);
        assert_eq!(partition_point(&cum, 0.26), 1);
        assert_eq!(partition_point(&cum, 0.99), 3);
        assert_eq!(partition_point(&cum, 1.0), 3);
    }
}
