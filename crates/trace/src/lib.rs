//! Synthetic storage-ensemble traces for the SieveStore reproduction.
//!
//! The SieveStore paper (ISCA 2010) is evaluated on week-long block-access
//! traces of a 13-server ensemble. Those traces are not bundled here, so
//! this crate provides a **calibrated synthetic substitute**: an ensemble
//! model mirroring the paper's Table 1 ([`EnsembleConfig::msr_like`]) and a
//! deterministic generator ([`SyntheticTrace`]) whose output reproduces the
//! statistical properties the paper's design observations rest on —
//! popularity skew (O1), per-server/volume/day skew variation and hot-set
//! drift (O2), diurnal load and rare independent bursts.
//!
//! The crate also provides trace serialization ([`TraceWriter`],
//! [`TraceReader`], [`write_csv`]) and streaming summary statistics
//! ([`TraceStats`]).
//!
//! # Quick start
//!
//! ```
//! use sievestore_trace::{EnsembleConfig, SyntheticTrace};
//! use sievestore_types::Day;
//!
//! # fn main() -> Result<(), sievestore_types::SieveError> {
//! let trace = SyntheticTrace::new(EnsembleConfig::tiny(1))?;
//! let requests = trace.day_requests(Day::new(0));
//! println!("day 0 has {} requests", requests.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod io;
pub mod model;
pub mod msr;
pub mod scenario;
pub mod stats;
pub mod stream;
pub mod synth;
pub mod zipf;

pub use io::{write_csv, TraceReader, TraceWriter};
pub use model::{EnsembleConfig, Scale, ServerConfig, VolumeConfig};
pub use msr::MsrReader;
pub use scenario::{CompiledScenario, ScenarioConfig, ScenarioStage};
pub use stats::{DayStats, TraceStats};
pub use stream::{
    request_order_key, sort_requests, RequestOrderKey, RequestStream, StreamMsg, TraceStream,
    TraceStreamConfig,
};
pub use synth::{SizeMix, SyntheticTrace, TraceIter};
pub use zipf::Zipf;
