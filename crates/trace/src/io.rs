//! Trace serialization: a compact binary format plus CSV export.
//!
//! The binary format is a fixed little-endian record stream with a small
//! header, so multi-gigabyte traces stream through `BufReader`/`BufWriter`
//! without intermediate allocation:
//!
//! ```text
//! header:  magic "SSTR" | u16 version | u16 reserved | u64 record count
//! record:  u64 timestamp_us | u64 packed block key | u32 len_blocks
//!          | u32 response_us | u8 kind tag | 3 pad bytes
//! ```
//!
//! CSV export mirrors the shape of the public MSR-Cambridge block traces
//! (timestamp, server, volume, kind, byte offset, byte length, response
//! time), which keeps our outputs comparable to the originals.

use std::io::{self, BufReader, BufWriter, Read, Write};

use sievestore_types::{
    BlockAddr, GlobalBlock, Micros, ParseRequestError, Request, RequestKind, SieveError, BLOCK_SIZE,
};

const MAGIC: &[u8; 4] = b"SSTR";
const VERSION: u16 = 1;
const RECORD_BYTES: usize = 8 + 8 + 4 + 4 + 1 + 3;

/// Writes a request stream in the binary trace format.
///
/// The writer buffers internally; call [`TraceWriter::finish`] to flush and
/// patch the record count into the header. `W` must support neither seeking
/// nor anything beyond `Write`; the count is emitted by `finish` only when
/// the destination was pre-counted, so instead we write the count as
/// `u64::MAX` ("streamed") unless [`TraceWriter::with_count`] was used.
///
/// # Examples
///
/// ```
/// use sievestore_trace::{TraceReader, TraceWriter};
/// use sievestore_types::{BlockAddr, Micros, Request, RequestKind, ServerId, VolumeId};
///
/// # fn main() -> Result<(), sievestore_types::SieveError> {
/// let req = Request::new(
///     Micros::from_secs(1),
///     BlockAddr::new(ServerId::new(0), VolumeId::new(0), 8),
///     8,
///     RequestKind::Read,
/// );
/// let mut bytes = Vec::new();
/// let mut writer = TraceWriter::new(&mut bytes)?;
/// writer.write(&req)?;
/// writer.finish()?;
///
/// let mut reader = TraceReader::new(bytes.as_slice())?;
/// assert_eq!(reader.next().transpose()?, Some(req));
/// assert!(reader.next().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: BufWriter<W>,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header with a streamed (unknown)
    /// record count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(out: W) -> Result<Self, SieveError> {
        Self::with_count(out, u64::MAX)
    }

    /// Creates a writer with a known record count in the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn with_count(out: W, count: u64) -> Result<Self, SieveError> {
        let mut out = BufWriter::new(out);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?;
        out.write_all(&count.to_le_bytes())?;
        Ok(TraceWriter { out, written: 0 })
    }

    /// Appends one request.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the destination.
    pub fn write(&mut self, req: &Request) -> Result<(), SieveError> {
        let mut rec = [0u8; RECORD_BYTES];
        rec[0..8].copy_from_slice(&req.timestamp.as_u64().to_le_bytes());
        rec[8..16].copy_from_slice(&GlobalBlock::from(req.start).raw().to_le_bytes());
        rec[16..20].copy_from_slice(&req.len_blocks.to_le_bytes());
        let response = u32::try_from(req.response_time.as_u64()).unwrap_or(u32::MAX);
        rec[20..24].copy_from_slice(&response.to_le_bytes());
        rec[24] = req.kind.as_byte();
        self.out.write_all(&rec)?;
        self.written += 1;
        Ok(())
    }

    /// Returns how many records have been written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the final flush error.
    pub fn finish(self) -> Result<W, SieveError> {
        Ok(self
            .out
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?)
    }
}

/// Streaming reader for the binary trace format; yields `Result<Request>`.
///
/// See [`TraceWriter`] for an end-to-end example.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    /// Record count from the header; `u64::MAX` means "streamed".
    declared: u64,
    read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader, validating the header.
    ///
    /// # Errors
    ///
    /// Returns a parse error for a bad magic or unsupported version, or an
    /// I/O error from the source.
    pub fn new(input: R) -> Result<Self, SieveError> {
        let mut input = BufReader::new(input);
        let mut header = [0u8; 16];
        input.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(ParseRequestError::new(0, "bad trace magic").into());
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(
                ParseRequestError::new(0, format!("unsupported trace version {version}")).into(),
            );
        }
        let declared = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        Ok(TraceReader {
            input,
            declared,
            read: 0,
        })
    }

    /// Returns the record count declared in the header, if the trace was
    /// written with a known count.
    pub fn declared_count(&self) -> Option<u64> {
        (self.declared != u64::MAX).then_some(self.declared)
    }

    fn read_record(&mut self) -> Result<Option<Request>, SieveError> {
        let mut rec = [0u8; RECORD_BYTES];
        match self.input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let timestamp = Micros::new(u64::from_le_bytes(rec[0..8].try_into().expect("8")));
        let key = GlobalBlock::from_raw(u64::from_le_bytes(rec[8..16].try_into().expect("8")));
        let len = u32::from_le_bytes(rec[16..20].try_into().expect("4"));
        let response = u32::from_le_bytes(rec[20..24].try_into().expect("4"));
        let kind = RequestKind::from_byte(rec[24]).ok_or_else(|| {
            ParseRequestError::new(self.read, format!("unknown request kind tag {}", rec[24]))
        })?;
        if len == 0 {
            return Err(ParseRequestError::new(self.read, "zero-length request").into());
        }
        self.read += 1;
        Ok(Some(
            Request::new(timestamp, BlockAddr::from(key), len, kind)
                .with_response_time(Micros::new(response as u64)),
        ))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Request, SieveError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

/// Writes requests as CSV in the shape of the MSR-Cambridge block traces.
///
/// Columns: `timestamp_us,server,volume,kind,offset_bytes,length_bytes,response_us`.
///
/// # Errors
///
/// Propagates I/O errors from the destination.
///
/// # Examples
///
/// ```
/// use sievestore_trace::write_csv;
/// use sievestore_types::{BlockAddr, Micros, Request, RequestKind, ServerId, VolumeId};
///
/// # fn main() -> Result<(), sievestore_types::SieveError> {
/// let req = Request::new(
///     Micros::from_secs(2),
///     BlockAddr::new(ServerId::new(1), VolumeId::new(0), 8),
///     8,
///     RequestKind::Write,
/// );
/// let mut out = Vec::new();
/// write_csv(&mut out, [req].iter())?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.lines().nth(1).unwrap().contains("Write"));
/// # Ok(())
/// # }
/// ```
pub fn write_csv<'a, W: Write>(
    out: W,
    requests: impl Iterator<Item = &'a Request>,
) -> Result<u64, SieveError> {
    let mut out = BufWriter::new(out);
    writeln!(
        out,
        "timestamp_us,server,volume,kind,offset_bytes,length_bytes,response_us"
    )?;
    let mut n = 0;
    for req in requests {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            req.timestamp.as_u64(),
            req.start.server.index(),
            req.start.volume.index(),
            match req.kind {
                RequestKind::Read => "Read",
                RequestKind::Write => "Write",
            },
            req.start.block * BLOCK_SIZE as u64,
            req.len_bytes(),
            req.response_time.as_u64(),
        )?;
        n += 1;
    }
    out.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_types::{ServerId, VolumeId};

    fn sample_requests() -> Vec<Request> {
        (0..100u64)
            .map(|i| {
                Request::new(
                    Micros::from_secs(i),
                    BlockAddr::new(
                        ServerId::new((i % 3) as u8),
                        VolumeId::new((i % 2) as u8),
                        i * 8,
                    ),
                    (i % 16 + 1) as u32,
                    if i % 4 == 0 {
                        RequestKind::Write
                    } else {
                        RequestKind::Read
                    },
                )
                .with_response_time(Micros::new(1000 + i))
            })
            .collect()
    }

    #[test]
    fn binary_roundtrip_preserves_every_field() {
        let reqs = sample_requests();
        let mut bytes = Vec::new();
        let mut writer = TraceWriter::with_count(&mut bytes, reqs.len() as u64).unwrap();
        for r in &reqs {
            writer.write(r).unwrap();
        }
        assert_eq!(writer.written(), 100);
        writer.finish().unwrap();

        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.declared_count(), Some(100));
        let back: Vec<Request> = (&mut reader).map(|r| r.unwrap()).collect();
        assert_eq!(back, reqs);
    }

    #[test]
    fn streamed_count_reads_back_as_none() {
        let mut bytes = Vec::new();
        let writer = TraceWriter::new(&mut bytes).unwrap();
        writer.finish().unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.declared_count(), None);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(TraceReader::new(bytes.as_slice()).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = Vec::new();
        TraceWriter::new(&mut bytes).unwrap().finish().unwrap();
        bytes[4] = 9; // version
        assert!(TraceReader::new(bytes.as_slice()).is_err());
    }

    #[test]
    fn corrupt_kind_tag_surfaces_as_parse_error() {
        let reqs = sample_requests();
        let mut bytes = Vec::new();
        let mut writer = TraceWriter::new(&mut bytes).unwrap();
        writer.write(&reqs[0]).unwrap();
        writer.finish().unwrap();
        // Kind tag is the 25th byte of the record, after the 16-byte header.
        bytes[16 + 24] = b'Z';
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("unknown request kind"));
    }

    #[test]
    fn truncated_record_yields_clean_eof() {
        let reqs = sample_requests();
        let mut bytes = Vec::new();
        let mut writer = TraceWriter::new(&mut bytes).unwrap();
        writer.write(&reqs[0]).unwrap();
        writer.write(&reqs[1]).unwrap();
        writer.finish().unwrap();
        bytes.truncate(bytes.len() - 5);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        // First record intact, second lost to truncation.
        let ok: Vec<_> = reader.filter_map(|r| r.ok()).collect();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn csv_has_header_and_one_row_per_request() {
        let reqs = sample_requests();
        let mut out = Vec::new();
        let n = write_csv(&mut out, reqs.iter()).unwrap();
        assert_eq!(n, reqs.len() as u64);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), reqs.len() + 1);
        assert!(lines[0].starts_with("timestamp_us,"));
        // Offsets are in bytes.
        assert!(lines[2].contains(&(8 * BLOCK_SIZE as u64).to_string()));
    }

    #[test]
    fn saturating_response_time_in_binary_format() {
        let req = Request::new(
            Micros::new(0),
            BlockAddr::new(ServerId::new(0), VolumeId::new(0), 0),
            1,
            RequestKind::Read,
        )
        .with_response_time(Micros::new(u64::MAX));
        let mut bytes = Vec::new();
        let mut writer = TraceWriter::new(&mut bytes).unwrap();
        writer.write(&req).unwrap();
        writer.finish().unwrap();
        let back = TraceReader::new(bytes.as_slice())
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        assert_eq!(back.response_time.as_u64(), u32::MAX as u64);
    }
}
