//! A bounded Zipf sampler.
//!
//! Samples ranks `1..=n` with probability proportional to `rank^-s`, using
//! rejection-inversion for monotone discrete distributions (Hörmann &
//! Derflinger, 1996). This is the popularity law behind the hot-block sets
//! in the synthetic ensemble workload: a small number of top-ranked blocks
//! absorb most accesses, with a rapidly thinning tail — the shape SieveStore
//! observation O1 rests on.

use rand::{Rng, RngExt};

/// A Zipf distribution over ranks `1..=n` with exponent `s >= 0`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s` concentrates
/// probability on low ranks.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use sievestore_trace::Zipf;
///
/// let zipf = Zipf::new(1000, 1.1).unwrap();
/// let mut rng = SmallRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(0.5)`: lower end of the inversion range.
    h_lo: f64,
    /// `H(n + 0.5)`: upper end of the inversion range.
    h_hi: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error string if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Result<Self, String> {
        if n == 0 {
            return Err("zipf support must be nonempty".to_string());
        }
        if !s.is_finite() || s < 0.0 {
            return Err(format!("zipf exponent must be finite and >= 0, got {s}"));
        }
        let mut zipf = Zipf {
            n,
            s,
            h_lo: 0.0,
            h_hi: 0.0,
        };
        zipf.h_lo = zipf.h(0.5);
        zipf.h_hi = zipf.h(n as f64 + 0.5);
        Ok(zipf)
    }

    /// Returns the number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Returns the exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Antiderivative of the weight function `x^-s`.
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    /// Inverse of [`Zipf::h`].
    fn h_inv(&self, u: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            u.exp()
        } else {
            (1.0 + (1.0 - self.s) * u).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Weight of rank `k`, `k^-s`.
    fn weight(&self, k: f64) -> f64 {
        k.powf(-self.s)
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_lo + rng.random::<f64>() * (self.h_hi - self.h_lo);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept if u fell inside the probability bar of rank k. Because
            // x^-s is convex and decreasing, the bar [H(k-1/2), H(k-1/2)+k^-s]
            // fits within [H(k-1/2), H(k+1/2)], making this a valid rejection.
            if u <= self.h(k - 0.5) + self.weight(k) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical_counts(zipf: &Zipf, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; zipf.n() as usize + 1];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -0.5).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn single_rank_always_returns_one() {
        let zipf = Zipf::new(1, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn samples_stay_in_support() {
        for s in [0.0, 0.5, 1.0, 1.2, 2.5] {
            let zipf = Zipf::new(37, s).unwrap();
            let mut rng = SmallRng::seed_from_u64(42);
            for _ in 0..10_000 {
                let k = zipf.sample(&mut rng);
                assert!((1..=37).contains(&k), "s={s} produced {k}");
            }
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let zipf = Zipf::new(10, 0.0).unwrap();
        let counts = empirical_counts(&zipf, 100_000, 1);
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let frac = count as f64 / 100_000.0;
            assert!(
                (frac - 0.1).abs() < 0.01,
                "rank {k} frequency {frac} departs from uniform"
            );
        }
    }

    #[test]
    fn empirical_frequencies_match_zipf_law() {
        // With s = 1, P(k) ∝ 1/k, so P(1)/P(2) = 2 and P(1)/P(4) = 4.
        let zipf = Zipf::new(100, 1.0).unwrap();
        let counts = empirical_counts(&zipf, 400_000, 2);
        let ratio12 = counts[1] as f64 / counts[2] as f64;
        let ratio14 = counts[1] as f64 / counts[4] as f64;
        assert!((ratio12 - 2.0).abs() < 0.15, "P1/P2 = {ratio12}");
        assert!((ratio14 - 4.0).abs() < 0.35, "P1/P4 = {ratio14}");
    }

    #[test]
    fn near_one_exponent_is_continuous() {
        // The s = 1 special case must agree with s just off 1.
        let draws = 200_000;
        let at_one = empirical_counts(&Zipf::new(50, 1.0).unwrap(), draws, 3);
        let near_one = empirical_counts(&Zipf::new(50, 1.0 + 1e-9).unwrap(), draws, 3);
        for k in [1usize, 2, 5, 10, 50] {
            let a = at_one[k] as f64 / draws as f64;
            let b = near_one[k] as f64 / draws as f64;
            assert!((a - b).abs() < 0.01, "rank {k}: {a} vs {b}");
        }
        // (ranks chosen explicitly; indexing is the point of the check)
    }

    #[test]
    fn heavier_exponent_concentrates_mass() {
        let light = empirical_counts(&Zipf::new(1000, 0.8).unwrap(), 100_000, 4);
        let heavy = empirical_counts(&Zipf::new(1000, 1.5).unwrap(), 100_000, 4);
        let top10 = |c: &[u64]| c[1..=10].iter().sum::<u64>();
        assert!(top10(&heavy) > top10(&light));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let zipf = Zipf::new(500, 1.1).unwrap();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn large_support_works() {
        let zipf = Zipf::new(1 << 40, 1.05).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1 << 40).contains(&k));
        }
    }
}
