//! Streaming day generation: the trace as a bounded-memory chunk pipeline.
//!
//! [`SyntheticTrace::day_requests`] materializes a whole calendar day in
//! RAM, which caps the scale a replay can run at. This module generates
//! the *same bytes in the same order* as a stream of fixed-size request
//! chunks instead:
//!
//! * Requests are ordered by [`request_order_key`], a **total** order
//!   (timestamp first, then the full request payload as a tiebreak).
//!   Because the order is total, every sorting strategy over the same
//!   multiset yields the same sequence — so a k-way merge of per-server
//!   sorted runs is bit-identical to sorting the concatenated day, which
//!   is what makes streamed and materialized generation interchangeable
//!   (pinned by this module's tests and `tests/streaming_replay.rs`).
//! * A background thread generates per-server day runs and merges them
//!   into chunks of [`TraceStreamConfig::chunk_requests`] requests,
//!   delivered over a bounded channel ([`TraceStreamConfig::depth`]
//!   chunks in flight). The consumer replays day *N* while the generator
//!   is already producing day *N + 1* — generation overlaps replay
//!   instead of serializing with it.
//! * With [`TraceStreamConfig::spill_dir`] set, each per-server run is
//!   written to disk (the [`crate::TraceWriter`] binary format) as soon
//!   as it is generated and the merge streams it back, so peak memory
//!   drops from one full day to one *server*-day plus I/O buffers —
//!   the mode full-scale replay runs in.
//!
//! Consumers either drain [`TraceStream::next_msg`] (day markers +
//! chunks, with buffer recycling) or flatten the stream through
//! [`TraceStream::requests`].

use std::path::PathBuf;
use std::sync::mpsc;
use std::thread::JoinHandle;

use sievestore_types::{Day, GlobalBlock, Request, SieveError};

use crate::io::{TraceReader, TraceWriter};
use crate::scenario::{CompiledScenario, ScenarioConfig};
use crate::synth::SyntheticTrace;

/// Sort key produced by [`request_order_key`]: timestamp-major, then
/// every remaining request field as a tiebreak.
pub type RequestOrderKey = (u64, u64, u32, u8, u64);

/// The canonical total order over requests.
///
/// Timestamp-major, with the remaining request fields as tiebreaks, so
/// two requests compare equal only when they are bitwise identical —
/// which makes the sorted sequence of any request multiset unique, and
/// merge-based streaming reproducible against materialized sorting.
///
/// # Examples
///
/// ```
/// use sievestore_trace::request_order_key;
/// use sievestore_types::{BlockAddr, Micros, Request, RequestKind, ServerId, VolumeId};
///
/// let a = Request::new(
///     Micros::new(5),
///     BlockAddr::new(ServerId::new(0), VolumeId::new(0), 8),
///     4,
///     RequestKind::Read,
/// );
/// let b = Request::new(
///     Micros::new(5),
///     BlockAddr::new(ServerId::new(1), VolumeId::new(0), 8),
///     4,
///     RequestKind::Read,
/// );
/// // Same timestamp, different server: the tiebreak still orders them.
/// assert!(request_order_key(&a) < request_order_key(&b));
/// ```
pub fn request_order_key(r: &Request) -> RequestOrderKey {
    (
        r.timestamp.as_u64(),
        GlobalBlock::from(r.start).raw(),
        r.len_blocks,
        r.kind.as_byte(),
        r.response_time.as_u64(),
    )
}

/// Sorts requests by [`request_order_key`] (the order every trace API
/// emits).
pub fn sort_requests(requests: &mut [Request]) {
    requests.sort_unstable_by_key(request_order_key);
}

/// Default requests per streamed chunk (~2 MiB of `Request`s).
pub const DEFAULT_CHUNK_REQUESTS: usize = 1 << 16;
/// Default chunks in flight between generator and consumer.
pub const DEFAULT_STREAM_DEPTH: usize = 4;

/// Configuration for [`SyntheticTrace::stream`].
#[derive(Debug, Clone)]
pub struct TraceStreamConfig {
    /// Requests per chunk.
    pub chunk_requests: usize,
    /// Bounded-channel depth: at most this many chunks in flight
    /// (generator backpressure).
    pub depth: usize,
    /// When set, per-server day runs spill to this directory instead of
    /// staying resident for the merge: peak generator memory drops from
    /// one day to one server-day. The directory is created if needed and
    /// run files are deleted as each day completes — including when the
    /// stream is dropped mid-day or generation fails (the files are
    /// guarded, never orphaned).
    pub spill_dir: Option<PathBuf>,
    /// Adversarial transform chain applied to the merged request
    /// sequence (see [`crate::scenario`]). The default empty scenario is
    /// the identity — the steady-state stream.
    pub scenario: ScenarioConfig,
}

impl Default for TraceStreamConfig {
    fn default() -> Self {
        TraceStreamConfig {
            chunk_requests: DEFAULT_CHUNK_REQUESTS,
            depth: DEFAULT_STREAM_DEPTH,
            spill_dir: None,
            scenario: ScenarioConfig::default(),
        }
    }
}

impl TraceStreamConfig {
    /// Sets the chunk size in requests (clamped to at least 1).
    #[must_use]
    pub fn with_chunk_requests(mut self, chunk_requests: usize) -> Self {
        self.chunk_requests = chunk_requests.max(1);
        self
    }

    /// Sets the in-flight chunk bound (clamped to at least 1).
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// Enables spill-to-disk generation under `dir`.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Applies an adversarial [`ScenarioConfig`] to the stream.
    ///
    /// The transform runs after the k-way merge, so the scenarioed
    /// sequence inherits the base stream's invariance: bit-identical for
    /// a given seed across chunk sizes, depths, and spill mode.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.scenario = scenario;
        self
    }
}

/// One message from the generator thread.
#[derive(Debug)]
pub enum StreamMsg {
    /// Calendar day `day` starts here; every following [`StreamMsg::Chunk`]
    /// until the next marker (or end of stream) belongs to it. Emitted for
    /// every day in the trace, even a day with no requests.
    StartDay(Day),
    /// The next run of requests, in [`request_order_key`] order. Never
    /// empty. Return the buffer via [`TraceStream::recycle`] to keep the
    /// steady state allocation-free.
    Chunk(Vec<Request>),
    /// Generation failed (spill-mode I/O); the stream ends after this.
    Failed(SieveError),
}

/// A live streaming generation: the consumer half of the pipeline.
///
/// Dropping the stream stops the generator (its next send fails) and
/// joins the background thread.
///
/// # Examples
///
/// ```
/// use sievestore_trace::{EnsembleConfig, SyntheticTrace, TraceStreamConfig};
/// use sievestore_types::Day;
///
/// let trace = SyntheticTrace::new(EnsembleConfig::tiny(42)).unwrap();
/// let streamed: Vec<_> = trace.stream(TraceStreamConfig::default()).requests().collect();
/// let mut materialized = Vec::new();
/// for d in 0..trace.days() {
///     materialized.extend(trace.day_requests(Day::new(d)));
/// }
/// assert_eq!(streamed, materialized);
/// ```
#[derive(Debug)]
pub struct TraceStream {
    rx: Option<mpsc::Receiver<StreamMsg>>,
    recycle_tx: Option<mpsc::Sender<Vec<Request>>>,
    handle: Option<JoinHandle<()>>,
}

impl TraceStream {
    /// Receives the next message, or `None` once generation completed.
    pub fn next_msg(&mut self) -> Option<StreamMsg> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    /// Hands a drained chunk buffer back to the generator for reuse.
    pub fn recycle(&self, mut buf: Vec<Request>) {
        buf.clear();
        // The generator may already have finished; dropped buffers are
        // simply reallocated next run.
        if let Some(tx) = &self.recycle_tx {
            let _ = tx.send(buf);
        }
    }

    /// Flattens the stream into one request iterator (convenience for
    /// analyses and tests; replay engines consume chunks directly).
    ///
    /// # Panics
    ///
    /// The iterator panics if spill-mode generation hits an I/O error.
    pub fn requests(self) -> RequestStream {
        RequestStream {
            stream: self,
            chunk: Vec::new(),
            pos: 0,
        }
    }
}

impl Drop for TraceStream {
    fn drop(&mut self) {
        // Closing the receiver makes the generator's next send fail, so
        // it exits even mid-day; closing the recycle channel lets it
        // detect the hang-up *between* sends too (spill mode checks it
        // between per-server run writes). Then reap the thread — by the
        // time `drop` returns, spill run files are guaranteed cleaned up.
        drop(self.rx.take());
        drop(self.recycle_tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Flattened per-request view of a [`TraceStream`].
///
/// Produced by [`TraceStream::requests`].
#[derive(Debug)]
pub struct RequestStream {
    stream: TraceStream,
    chunk: Vec<Request>,
    pos: usize,
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            if self.pos < self.chunk.len() {
                let req = self.chunk[self.pos];
                self.pos += 1;
                return Some(req);
            }
            if !self.chunk.is_empty() {
                self.stream.recycle(std::mem::take(&mut self.chunk));
            }
            self.pos = 0;
            match self.stream.next_msg()? {
                StreamMsg::StartDay(_) => {}
                StreamMsg::Chunk(chunk) => self.chunk = chunk,
                StreamMsg::Failed(e) => panic!("trace generation failed: {e}"),
            }
        }
    }
}

/// Which slice of the ensemble a stream generates.
#[derive(Debug, Clone, Copy)]
enum StreamScope {
    AllServers,
    Server(usize),
}

impl SyntheticTrace {
    /// Streams every request of the whole trace, all servers merged in
    /// [`request_order_key`] order — the same sequence
    /// [`SyntheticTrace::day_requests`] materializes, day by day, but
    /// generated on a background thread in bounded chunks.
    ///
    /// # Panics
    ///
    /// Panics if the configured scenario does not validate against this
    /// trace's ensemble (call [`ScenarioConfig::validate`] first to get
    /// a `Result` instead — the `sim` entry points do).
    pub fn stream(&self, config: TraceStreamConfig) -> TraceStream {
        self.stream_scoped(StreamScope::AllServers, config)
    }

    /// Streams a single server's slice of the trace (the counterpart of
    /// [`SyntheticTrace::server_day`]).
    ///
    /// A configured scenario applies to this server's generated slice
    /// only: stages that re-address requests across servers (failover)
    /// may emit requests addressed elsewhere and will not include
    /// traffic migrating in from other servers' slices.
    ///
    /// # Panics
    ///
    /// Panics if `server_idx` is out of range or the configured scenario
    /// does not validate against this trace's ensemble.
    pub fn stream_server(&self, server_idx: usize, config: TraceStreamConfig) -> TraceStream {
        assert!(
            server_idx < self.config().servers.len(),
            "server out of range"
        );
        self.stream_scoped(StreamScope::Server(server_idx), config)
    }

    fn stream_scoped(&self, scope: StreamScope, config: TraceStreamConfig) -> TraceStream {
        let scenario = CompiledScenario::compile(&config.scenario, self.config())
            .expect("scenario must validate against this trace's ensemble");
        let config = TraceStreamConfig {
            chunk_requests: config.chunk_requests.max(1),
            depth: config.depth.max(1),
            spill_dir: config.spill_dir,
            scenario: config.scenario,
        };
        let (tx, rx) = mpsc::sync_channel::<StreamMsg>(config.depth);
        let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<Request>>();
        let trace = self.clone();
        let handle = std::thread::Builder::new()
            .name("trace-stream".into())
            .spawn(move || {
                Generator {
                    trace,
                    scope,
                    config,
                    scenario,
                    tx,
                    recycle_rx,
                    spare: Vec::new(),
                }
                .run();
            })
            .expect("spawn trace generator thread");
        TraceStream {
            rx: Some(rx),
            recycle_tx: Some(recycle_tx),
            handle: Some(handle),
        }
    }
}

/// Removes its run files when dropped, so spill-mode generation never
/// leaves orphans behind — not on completion, not on consumer hang-up,
/// not on an I/O-error early return, not on a generator panic.
struct SpillRunGuard {
    paths: Vec<PathBuf>,
}

impl Drop for SpillRunGuard {
    fn drop(&mut self) {
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// The background generation loop.
struct Generator {
    trace: SyntheticTrace,
    scope: StreamScope,
    config: TraceStreamConfig,
    scenario: CompiledScenario,
    tx: mpsc::SyncSender<StreamMsg>,
    recycle_rx: mpsc::Receiver<Vec<Request>>,
    /// Recycled buffers drained by [`Generator::consumer_gone`], reused
    /// before asking the channel again.
    spare: Vec<Vec<Request>>,
}

impl Generator {
    fn run(mut self) {
        for d in 0..self.trace.days() {
            let day = Day::new(d);
            if self.tx.send(StreamMsg::StartDay(day)).is_err() {
                return; // consumer dropped
            }
            let done = match &self.config.spill_dir {
                None => self.emit_day_in_memory(day),
                Some(dir) => match self.emit_day_spilled(day, dir.clone()) {
                    Ok(done) => done,
                    Err(e) => {
                        let _ = self.tx.send(StreamMsg::Failed(e));
                        return;
                    }
                },
            };
            if !done {
                return;
            }
        }
    }

    fn servers(&self) -> Vec<usize> {
        match self.scope {
            StreamScope::AllServers => (0..self.trace.config().servers.len()).collect(),
            StreamScope::Server(idx) => vec![idx],
        }
    }

    /// A chunk buffer, recycled from the consumer when available.
    fn chunk_buf(&mut self) -> Vec<Request> {
        let mut buf = self
            .spare
            .pop()
            .or_else(|| self.recycle_rx.try_recv().ok())
            .unwrap_or_else(|| Vec::with_capacity(self.config.chunk_requests));
        buf.clear();
        buf
    }

    /// Drains the recycle channel into the spare pool; `true` once the
    /// consumer has hung up. Lets spill mode abort between per-server
    /// run writes instead of generating the rest of a day nobody will
    /// read.
    fn consumer_gone(&mut self) -> bool {
        loop {
            match self.recycle_rx.try_recv() {
                Ok(buf) => self.spare.push(buf),
                Err(mpsc::TryRecvError::Empty) => return false,
                Err(mpsc::TryRecvError::Disconnected) => return true,
            }
        }
    }

    /// Generates every server's run for `day` in memory and merges them
    /// into chunks. Returns `false` if the consumer went away.
    fn emit_day_in_memory(&mut self, day: Day) -> bool {
        let runs: Vec<Vec<Request>> = self
            .servers()
            .into_iter()
            .map(|s| self.trace.server_day_requests(s, day))
            .collect();
        let mut sources: Vec<std::vec::IntoIter<Request>> =
            runs.into_iter().map(Vec::into_iter).collect();
        let mut heads: Vec<Option<Request>> = sources.iter_mut().map(Iterator::next).collect();
        self.merge_chunks(&mut heads, |i| sources[i].next()).is_ok()
    }

    /// Spill mode: writes each server run to disk as soon as it is
    /// generated (so only one resident server-day at a time), then merges
    /// the runs back as streams. The runs live behind a [`SpillRunGuard`],
    /// so every exit — completion, consumer hang-up, I/O error, panic —
    /// leaves the spill directory clean.
    ///
    /// Returns `Ok(false)` if the consumer went away, `Err` on I/O
    /// failure.
    fn emit_day_spilled(&mut self, day: Day, dir: PathBuf) -> Result<bool, SieveError> {
        std::fs::create_dir_all(&dir)?;
        let servers = self.servers();
        let mut guard = SpillRunGuard {
            paths: Vec::with_capacity(servers.len()),
        };
        for s in servers {
            if self.consumer_gone() {
                return Ok(false);
            }
            let run = self.trace.server_day_requests(s, day);
            let path = dir.join(format!("day{:04}-srv{s:02}.run", day.index()));
            // Registered before creation: a partially-written file from a
            // failed write below is still removed by the guard.
            guard.paths.push(path.clone());
            let file = std::fs::File::create(&path)?;
            let mut writer = TraceWriter::with_count(file, run.len() as u64)?;
            for req in &run {
                writer.write(req)?;
            }
            writer.finish()?;
        }
        let mut readers = guard
            .paths
            .iter()
            .map(|p| TraceReader::new(std::fs::File::open(p)?))
            .collect::<Result<Vec<_>, SieveError>>()?;
        let mut pull = |i: usize| readers[i].next().transpose();
        let mut heads: Vec<Option<Request>> = Vec::with_capacity(guard.paths.len());
        for i in 0..guard.paths.len() {
            heads.push(pull(i)?);
        }
        let mut io_err: Option<SieveError> = None;
        let delivered = self.merge_chunks(&mut heads, |i| match pull(i) {
            Ok(next) => next,
            Err(e) => {
                io_err = Some(e);
                None // ends this source; the error surfaces below
            }
        });
        match io_err {
            Some(e) => Err(e),
            None => Ok(delivered.is_ok()),
        }
    }

    /// K-way merge over `heads` (refilled by `next`), chunked and sent.
    /// With the total [`request_order_key`] order, equal heads are
    /// bitwise-identical requests, so the lowest-index tiebreak below
    /// changes nothing about the produced byte sequence.
    ///
    /// The scenario transform runs here, on each merged request in its
    /// canonical position — after ordering, before chunking — which is
    /// what makes a scenarioed stream invariant under chunk shape and
    /// spill mode: the spilled runs hold untransformed base requests, and
    /// both backing stores feed the identical merged sequence through the
    /// identical pure per-request transform. An amplifying stage may push
    /// a chunk a few requests past the configured size; boundaries carry
    /// no meaning, so nothing downstream can tell.
    ///
    /// Returns `Err(())` when the consumer hung up.
    fn merge_chunks<F>(&mut self, heads: &mut [Option<Request>], mut next: F) -> Result<(), ()>
    where
        F: FnMut(usize) -> Option<Request>,
    {
        let mut chunk = self.chunk_buf();
        loop {
            let mut min: Option<(usize, RequestOrderKey)> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(req) = head {
                    let key = request_order_key(req);
                    if min.as_ref().is_none_or(|(_, k)| key < *k) {
                        min = Some((i, key));
                    }
                }
            }
            let Some((i, _)) = min else { break };
            let req = heads[i].take().expect("head present");
            heads[i] = next(i);
            self.scenario.apply(req, &mut chunk);
            if chunk.len() >= self.config.chunk_requests {
                let full = std::mem::replace(&mut chunk, self.chunk_buf());
                if self.tx.send(StreamMsg::Chunk(full)).is_err() {
                    return Err(());
                }
            }
        }
        if !chunk.is_empty() && self.tx.send(StreamMsg::Chunk(chunk)).is_err() {
            return Err(());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EnsembleConfig;

    fn tiny() -> SyntheticTrace {
        SyntheticTrace::new(EnsembleConfig::tiny(0xBEEF)).unwrap()
    }

    fn materialized(trace: &SyntheticTrace) -> Vec<Request> {
        let mut all = Vec::new();
        for d in 0..trace.days() {
            all.extend(trace.day_requests(Day::new(d)));
        }
        all
    }

    fn drain(mut stream: TraceStream) -> (Vec<Day>, Vec<Request>) {
        let mut days = Vec::new();
        let mut all = Vec::new();
        while let Some(msg) = stream.next_msg() {
            match msg {
                StreamMsg::StartDay(d) => days.push(d),
                StreamMsg::Chunk(chunk) => {
                    assert!(!chunk.is_empty(), "chunks are never empty");
                    all.extend_from_slice(&chunk);
                    stream.recycle(chunk);
                }
                StreamMsg::Failed(e) => panic!("generation failed: {e}"),
            }
        }
        (days, all)
    }

    #[test]
    fn order_key_is_total_over_distinct_requests() {
        let trace = tiny();
        let day = trace.day_requests(Day::new(1));
        for w in day.windows(2) {
            let (a, b) = (request_order_key(&w[0]), request_order_key(&w[1]));
            assert!(a <= b, "day_requests not sorted by the canonical order");
            if a == b {
                assert_eq!(w[0], w[1], "equal keys must mean identical requests");
            }
        }
    }

    #[test]
    fn in_memory_stream_matches_materialized_at_any_chunk_size() {
        let trace = tiny();
        let expect = materialized(&trace);
        for chunk in [1usize, 7, 1024, DEFAULT_CHUNK_REQUESTS] {
            let cfg = TraceStreamConfig::default().with_chunk_requests(chunk);
            let (days, got) = drain(trace.stream(cfg));
            assert_eq!(days.len(), trace.days() as usize, "chunk {chunk}");
            assert_eq!(got, expect, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn spilled_stream_matches_materialized() {
        let trace = tiny();
        let dir = std::env::temp_dir().join(format!("sievestore-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TraceStreamConfig::default()
            .with_chunk_requests(513)
            .with_spill_dir(&dir);
        let (days, got) = drain(trace.stream(cfg));
        assert_eq!(days.len(), trace.days() as usize);
        assert_eq!(got, materialized(&trace));
        // Run files are cleaned up as days complete.
        let leftover = std::fs::read_dir(&dir)
            .map(|d| d.count())
            .unwrap_or_default();
        assert_eq!(leftover, 0, "spill files must be deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_stream_matches_server_day() {
        let trace = tiny();
        let server = 1;
        let mut expect = Vec::new();
        for d in 0..trace.days() {
            expect.extend(trace.server_day(server, Day::new(d)));
        }
        let cfg = TraceStreamConfig::default().with_chunk_requests(97);
        let (_, got) = drain(trace.stream_server(server, cfg));
        assert_eq!(got, expect);
    }

    #[test]
    fn request_iterator_flattens_the_stream() {
        let trace = tiny();
        let got: Vec<Request> = trace
            .stream(TraceStreamConfig::default().with_chunk_requests(311))
            .requests()
            .collect();
        assert_eq!(got, materialized(&trace));
    }

    #[test]
    fn dropping_a_stream_mid_day_joins_cleanly() {
        let trace = tiny();
        let mut stream = trace.stream(TraceStreamConfig::default().with_chunk_requests(64));
        // Take a few messages, then hang up with the generator mid-day.
        for _ in 0..3 {
            let _ = stream.next_msg();
        }
        drop(stream); // must not hang or panic
    }

    #[test]
    fn dropping_a_spilled_stream_mid_day_leaves_no_run_files() {
        let trace = tiny();
        let dir =
            std::env::temp_dir().join(format!("sievestore-stream-abort-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Tiny chunks + depth 1: the generator blocks mid-merge with its
        // run files still on disk when we hang up.
        let cfg = TraceStreamConfig::default()
            .with_chunk_requests(8)
            .with_depth(1)
            .with_spill_dir(&dir);
        let mut stream = trace.stream(cfg);
        for _ in 0..3 {
            let _ = stream.next_msg();
        }
        // Drop joins the generator thread, so by the time it returns the
        // guard has run: the spill dir must already be empty.
        drop(stream);
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(Result::ok).map(|e| e.path()).collect())
            .unwrap_or_default();
        assert!(leftover.is_empty(), "orphaned run files: {leftover:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_write_error_cleans_up_already_written_runs() {
        let trace = tiny();
        let dir =
            std::env::temp_dir().join(format!("sievestore-stream-ioerr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Squat on server 1's run filename with a *directory*, so its
        // `File::create` fails after server 0's run was already written:
        // the exact mid-day I/O-error path that used to orphan files.
        let blocker = dir.join("day0000-srv01.run");
        std::fs::create_dir_all(&blocker).unwrap();
        let cfg = TraceStreamConfig::default().with_spill_dir(&dir);
        let mut stream = trace.stream(cfg);
        let mut failed = false;
        while let Some(msg) = stream.next_msg() {
            if let StreamMsg::Failed(_) = msg {
                failed = true;
            }
        }
        assert!(failed, "colliding run path must surface as Failed");
        drop(stream);
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| *p != blocker)
            .collect();
        assert!(
            leftover.is_empty(),
            "srv00's run must be removed on the error path: {leftover:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scenario_stream_is_identical_in_memory_and_spilled() {
        use crate::scenario::{ScenarioConfig, ScenarioStage};
        let trace = tiny();
        let scenario = ScenarioConfig::new(0xCAFE)
            .with_stage(ScenarioStage::Failover {
                from_day: 1,
                server: 0,
            })
            .with_stage(ScenarioStage::FlashCrowd {
                day: 1,
                start_minute: 0,
                duration_minutes: 240,
                amplification: 3,
                crowd_fraction: 0.1,
            });
        let (_, reference) =
            drain(trace.stream(TraceStreamConfig::default().with_scenario(scenario.clone())));
        // Reference path: transform the materialized merge directly.
        let compiled = CompiledScenario::compile(&scenario, trace.config()).unwrap();
        assert_eq!(reference, compiled.apply_all(&materialized(&trace)));
        let dir =
            std::env::temp_dir().join(format!("sievestore-stream-scenario-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for chunk in [3usize, 509] {
            let cfg = TraceStreamConfig::default()
                .with_chunk_requests(chunk)
                .with_depth(1)
                .with_scenario(scenario.clone());
            let (_, got) = drain(trace.stream(cfg.clone()));
            assert_eq!(got, reference, "chunk {chunk} diverged");
            let (_, spilled) = drain(trace.stream(cfg.with_spill_dir(&dir)));
            assert_eq!(spilled, reference, "spilled chunk {chunk} diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn day_markers_precede_their_chunks() {
        let trace = tiny();
        let mut stream = trace.stream(TraceStreamConfig::default());
        let mut current: Option<Day> = None;
        let mut expected_next = 0u16;
        while let Some(msg) = stream.next_msg() {
            match msg {
                StreamMsg::StartDay(d) => {
                    assert_eq!(d.index(), expected_next, "days arrive in order");
                    expected_next += 1;
                    current = Some(d);
                }
                StreamMsg::Chunk(chunk) => {
                    let day = current.expect("chunk before any day marker");
                    assert!(chunk.iter().all(|r| r.timestamp.day() == day));
                    stream.recycle(chunk);
                }
                StreamMsg::Failed(e) => panic!("generation failed: {e}"),
            }
        }
    }
}
