//! Streaming trace statistics.
//!
//! [`TraceStats`] accumulates the per-day and whole-trace summary numbers
//! that calibrate the generator against the paper's trace (requests, block
//! accesses, unique blocks, read share, data volume).

use std::collections::HashSet;

use sievestore_types::{Day, Request, BLOCK_SIZE, GIB};

/// Per-day accumulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Number of multi-block requests.
    pub requests: u64,
    /// Number of 512-byte block accesses.
    pub block_accesses: u64,
    /// Number of distinct blocks touched.
    pub unique_blocks: u64,
    /// Block accesses that were reads.
    pub read_blocks: u64,
    /// Requests that were reads.
    pub read_requests: u64,
}

impl DayStats {
    /// Data accessed this day in GB (blocks × 512 B).
    pub fn data_gb(&self) -> f64 {
        self.block_accesses as f64 * BLOCK_SIZE as f64 / GIB as f64
    }

    /// Mean request size in blocks.
    pub fn mean_request_blocks(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.block_accesses as f64 / self.requests as f64
        }
    }

    /// Fraction of block accesses that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.block_accesses == 0 {
            0.0
        } else {
            self.read_blocks as f64 / self.block_accesses as f64
        }
    }
}

/// Streaming statistics over a whole trace, grouped by calendar day.
///
/// # Examples
///
/// ```
/// use sievestore_trace::{EnsembleConfig, SyntheticTrace, TraceStats};
///
/// let trace = SyntheticTrace::new(EnsembleConfig::tiny(7)).unwrap();
/// let mut stats = TraceStats::new();
/// for req in trace.iter() {
///     stats.observe(&req);
/// }
/// assert_eq!(stats.days().len(), 3);
/// assert!(stats.total().block_accesses > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    days: Vec<DayStats>,
    seen: Vec<HashSet<u64>>,
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TraceStats::default()
    }

    /// Folds one request into the statistics.
    pub fn observe(&mut self, req: &Request) {
        let day = req.timestamp.day().as_usize();
        if day >= self.days.len() {
            self.days.resize(day + 1, DayStats::default());
            self.seen.resize_with(day + 1, HashSet::new);
        }
        let d = &mut self.days[day];
        d.requests += 1;
        d.block_accesses += req.len_blocks as u64;
        if req.kind.is_read() {
            d.read_requests += 1;
            d.read_blocks += req.len_blocks as u64;
        }
        let seen = &mut self.seen[day];
        for b in req.blocks() {
            if seen.insert(b.raw()) {
                d.unique_blocks += 1;
            }
        }
    }

    /// Per-day statistics, indexed by day.
    pub fn days(&self) -> &[DayStats] {
        &self.days
    }

    /// Statistics for one day, if observed.
    pub fn day(&self, day: Day) -> Option<&DayStats> {
        self.days.get(day.as_usize())
    }

    /// Whole-trace totals. `unique_blocks` sums per-day uniques (a block
    /// active on two days counts twice), matching the paper's per-calendar-
    /// day analysis.
    pub fn total(&self) -> DayStats {
        let mut total = DayStats::default();
        for d in &self.days {
            total.requests += d.requests;
            total.block_accesses += d.block_accesses;
            total.unique_blocks += d.unique_blocks;
            total.read_blocks += d.read_blocks;
            total.read_requests += d.read_requests;
        }
        total
    }
}

impl<'a> FromIterator<&'a Request> for TraceStats {
    fn from_iter<I: IntoIterator<Item = &'a Request>>(iter: I) -> Self {
        let mut stats = TraceStats::new();
        for req in iter {
            stats.observe(req);
        }
        stats
    }
}

impl Extend<Request> for TraceStats {
    fn extend<I: IntoIterator<Item = Request>>(&mut self, iter: I) {
        for req in iter {
            self.observe(&req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sievestore_types::{BlockAddr, Micros, RequestKind, ServerId, VolumeId};

    fn req(day: u64, block: u64, len: u32, kind: RequestKind) -> Request {
        Request::new(
            Micros::from_days(day) + Micros::from_secs(1),
            BlockAddr::new(ServerId::new(0), VolumeId::new(0), block),
            len,
            kind,
        )
    }

    #[test]
    fn counts_requests_blocks_and_uniques() {
        let mut stats = TraceStats::new();
        stats.observe(&req(0, 0, 8, RequestKind::Read));
        stats.observe(&req(0, 4, 8, RequestKind::Write)); // overlaps blocks 4..8
        let d = &stats.days()[0];
        assert_eq!(d.requests, 2);
        assert_eq!(d.block_accesses, 16);
        assert_eq!(d.unique_blocks, 12);
        assert_eq!(d.read_blocks, 8);
        assert_eq!(d.read_requests, 1);
        assert!((d.read_fraction() - 0.5).abs() < 1e-12);
        assert!((d.mean_request_blocks() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn uniques_reset_per_day() {
        let mut stats = TraceStats::new();
        stats.observe(&req(0, 0, 4, RequestKind::Read));
        stats.observe(&req(1, 0, 4, RequestKind::Read));
        assert_eq!(stats.days()[0].unique_blocks, 4);
        assert_eq!(stats.days()[1].unique_blocks, 4);
        assert_eq!(stats.total().unique_blocks, 8);
    }

    #[test]
    fn day_gaps_are_zero_filled() {
        let mut stats = TraceStats::new();
        stats.observe(&req(2, 0, 1, RequestKind::Read));
        assert_eq!(stats.days().len(), 3);
        assert_eq!(stats.days()[0], DayStats::default());
        assert_eq!(stats.day(Day::new(1)).unwrap().requests, 0);
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let stats = TraceStats::new();
        assert!(stats.days().is_empty());
        let total = stats.total();
        assert_eq!(total.requests, 0);
        assert_eq!(total.mean_request_blocks(), 0.0);
        assert_eq!(total.read_fraction(), 0.0);
        assert_eq!(total.data_gb(), 0.0);
    }

    #[test]
    fn from_iterator_and_extend_agree() {
        let reqs = [
            req(0, 0, 8, RequestKind::Read),
            req(0, 100, 2, RequestKind::Write),
            req(1, 0, 1, RequestKind::Read),
        ];
        let a: TraceStats = reqs.iter().collect();
        let mut b = TraceStats::new();
        b.extend(reqs.iter().copied());
        assert_eq!(a.days(), b.days());
    }

    #[test]
    fn data_gb_conversion() {
        let mut stats = TraceStats::new();
        // 2^21 blocks of 512 B = 1 GiB.
        for i in 0..2048u64 {
            stats.observe(&req(0, i * 1024, 1024, RequestKind::Read));
        }
        assert!((stats.days()[0].data_gb() - 1.0).abs() < 1e-9);
    }
}
