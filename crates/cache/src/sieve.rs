//! SIEVE eviction: lazy promotion via a visited bit and a scanning hand.
//!
//! SIEVE (NSDI '24) replaces LRU's move-to-front with a single bit per
//! frame: a hit sets the frame's *visited* bit and nothing else. Eviction
//! walks a *hand* from the tail (oldest insertion) toward the head,
//! clearing visited bits as it passes and evicting the first frame it
//! finds unvisited; new frames enter at the head with the bit clear. The
//! hand stays where it stopped between evictions, so frequently-hit
//! frames keep earning reprieves while one-hit-wonders near the tail are
//! swept out quickly — a good fit for the paper's highly-selective
//! workloads, where most blocks are touched once and a tiny minority
//! dominates.
//!
//! The property that matters for the sharded replay engine is on the hit
//! path: [`SieveCache::touch`] takes `&self` and performs one hash-map
//! probe plus one relaxed atomic store. There is no list surgery and
//! therefore no write lock — concurrent readers can record hits while a
//! single evictor advances the hand (see
//! [`SieveCache::advance_hand`]). Structural mutation (`insert`,
//! `remove`, `clear`) still requires `&mut self`.
//!
//! The resident-frame bookkeeping (key index, slot slab, intrusive list)
//! is the same `FrameList` (`frames.rs`) that backs
//! [`LruCache`](crate::LruCache); only the replacement decision and its
//! observability accounting live here.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use sievestore_types::{obs_count, obs_gauge_adjust};

use crate::frames::{FrameList, IterFromHead, NIL};

/// A fully-associative cache over packed block keys with SIEVE
/// replacement.
///
/// # Examples
///
/// ```
/// use sievestore_cache::SieveCache;
///
/// let mut cache = SieveCache::new(2);
/// assert_eq!(cache.insert(1), None);
/// assert_eq!(cache.insert(2), None);
/// assert!(cache.touch(1));              // sets 1's visited bit, no list move
/// assert_eq!(cache.insert(3), Some(2)); // hand skips visited 1, evicts 2
/// assert!(cache.contains(1) && cache.contains(3));
/// ```
#[derive(Debug)]
pub struct SieveCache {
    /// Head = newest insertion, tail = oldest. Slot metadata is the
    /// SIEVE visited bit, atomic so `touch` can set it through `&self`.
    frames: FrameList<AtomicBool>,
    /// Slot index the eviction hand points at; [`NIL`] means "start from
    /// the tail". Atomic so [`SieveCache::advance_hand`] can step it
    /// through `&self` while readers touch.
    hand: AtomicU32,
}

impl SieveCache {
    /// Creates a cache holding at most `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or exceeds `u32::MAX - 1` slots.
    pub fn new(capacity: usize) -> Self {
        SieveCache {
            frames: FrameList::new(capacity),
            hand: AtomicU32::new(NIL),
        }
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.frames.capacity()
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether `key` is resident (does not set the visited bit).
    pub fn contains(&self, key: u64) -> bool {
        self.frames.contains(key)
    }

    /// Records an access to `key`. Returns `true` if it was resident (a
    /// hit), `false` otherwise.
    ///
    /// This is the lock-free hit path: one map probe plus one relaxed
    /// store to the frame's visited bit. No ordering is needed — the bit
    /// is advisory (it only biases a future eviction decision), so a
    /// racing hand sweep may legitimately observe it either way.
    pub fn touch(&self, key: u64) -> bool {
        match self.frames.index_of(key) {
            Some(idx) => {
                self.frames.slot(idx).meta.store(true, Ordering::Relaxed);
                obs_count!(CacheHits, 1);
                true
            }
            None => {
                obs_count!(CacheMisses, 1);
                false
            }
        }
    }

    /// Inserts `key`, evicting via the hand if the cache is full. Returns
    /// the evicted key, if any. Inserting a resident key sets its visited
    /// bit (it counts as a hit) and never evicts.
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        if let Some(idx) = self.frames.index_of(key) {
            self.frames.slot(idx).meta.store(true, Ordering::Relaxed);
            return None;
        }
        let evicted = if self.frames.len() >= self.frames.capacity() {
            Some(self.evict())
        } else {
            None
        };
        if evicted.is_some() {
            obs_count!(CacheEvictions, 1);
        } else {
            obs_gauge_adjust!(CacheResidentFrames, 1);
        }
        self.frames.push_front(key, AtomicBool::new(false));
        evicted
    }

    /// Runs the hand until it finds an unvisited frame and releases it.
    ///
    /// Visited frames get their bit cleared and a reprieve; the hand
    /// moves from the tail toward the head and wraps back to the tail
    /// past the head. Terminates within two sweeps: the first sweep
    /// clears every bit it passes, so the second cannot skip anyone.
    fn evict(&mut self) -> u64 {
        debug_assert!(!self.frames.is_empty(), "evict from an empty cache");
        let mut idx = self.hand.load(Ordering::Relaxed);
        if idx == NIL {
            idx = self.frames.tail();
        }
        loop {
            let slot = self.frames.slot(idx);
            if slot.meta.swap(false, Ordering::Relaxed) {
                idx = if slot.prev == NIL {
                    self.frames.tail()
                } else {
                    slot.prev
                };
            } else {
                // Park the hand on the next-older neighbor; NIL means it
                // restarts from the (possibly new) tail next time.
                let parked = slot.prev;
                let key = self.frames.release(idx);
                self.hand.store(parked, Ordering::Relaxed);
                return key;
            }
        }
    }

    /// Advances the hand by at most one frame through `&self`, for an
    /// evictor thread running concurrently with lock-free readers.
    ///
    /// If the frame under the hand is visited, its bit is cleared, the
    /// hand steps toward the head (wrapping to the tail), and `None` is
    /// returned. If it is unvisited, its key is returned as the eviction
    /// candidate and the hand stays put — actually removing the frame
    /// needs `&mut self` (e.g. [`SieveCache::remove`]). Returns `None`
    /// on an empty cache.
    ///
    /// Intended for a *single* sweeper: concurrent `touch` calls are safe
    /// (the bit race is benign), but two sweepers would trample each
    /// other's hand position.
    pub fn advance_hand(&self) -> Option<u64> {
        let mut idx = self.hand.load(Ordering::Relaxed);
        if idx == NIL {
            idx = self.frames.tail();
            if idx == NIL {
                return None;
            }
        }
        let slot = self.frames.slot(idx);
        if slot.meta.swap(false, Ordering::Relaxed) {
            let next = if slot.prev == NIL {
                self.frames.tail()
            } else {
                slot.prev
            };
            self.hand.store(next, Ordering::Relaxed);
            None
        } else {
            Some(slot.key)
        }
    }

    /// Removes `key`; returns whether it was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.frames.index_of(key) {
            Some(idx) => {
                // Never leave the hand on a recycled slot.
                if self.hand.load(Ordering::Relaxed) == idx {
                    self.hand
                        .store(self.frames.slot(idx).prev, Ordering::Relaxed);
                }
                self.frames.release(idx);
                obs_gauge_adjust!(CacheResidentFrames, -1);
                true
            }
            None => false,
        }
    }

    /// Drops every resident frame and resets the hand.
    pub fn clear(&mut self) {
        obs_gauge_adjust!(CacheResidentFrames, -(self.frames.len() as i64));
        self.frames.clear();
        self.hand.store(NIL, Ordering::Relaxed);
    }

    /// Iterates over resident keys from newest to oldest insertion.
    pub fn iter(&self) -> IterSieve<'_> {
        IterSieve {
            inner: self.frames.iter_from_head(),
        }
    }
}

impl Clone for SieveCache {
    fn clone(&self) -> Self {
        SieveCache {
            frames: self
                .frames
                .clone_with(|v| AtomicBool::new(v.load(Ordering::Relaxed))),
            hand: AtomicU32::new(self.hand.load(Ordering::Relaxed)),
        }
    }
}

impl<'a> IntoIterator for &'a SieveCache {
    type Item = u64;
    type IntoIter = IterSieve<'a>;

    fn into_iter(self) -> IterSieve<'a> {
        self.iter()
    }
}

/// Iterator over resident keys in newest→oldest insertion order, from
/// [`SieveCache::iter`].
#[derive(Debug)]
pub struct IterSieve<'a> {
    inner: IterFromHead<'a, AtomicBool>,
}

impl Iterator for IterSieve<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use std::sync::RwLock;

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = SieveCache::new(0);
    }

    #[test]
    fn unvisited_frames_evict_fifo() {
        let mut c = SieveCache::new(3);
        for k in [1, 2, 3] {
            assert_eq!(c.insert(k), None);
        }
        // No hits anywhere: the hand evicts in insertion order.
        assert_eq!(c.insert(4), Some(1));
        assert_eq!(c.insert(5), Some(2));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn visited_frame_survives_one_sweep() {
        let mut c = SieveCache::new(3);
        for k in [1, 2, 3] {
            c.insert(k);
        }
        assert!(c.touch(1));
        assert_eq!(c.insert(4), Some(2)); // hand clears 1's bit, evicts 2
        assert!(c.contains(1));
        assert_eq!(c.insert(5), Some(3)); // hand parked past 1; 3 is next
        assert!(c.contains(1));
        assert_eq!(c.insert(6), Some(4)); // wrapped; 1's bit is clear but hand is past it
        assert!(c.contains(1));
    }

    #[test]
    fn all_visited_wraps_and_evicts_tail() {
        let mut c = SieveCache::new(3);
        for k in [1, 2, 3] {
            c.insert(k);
            c.touch(k);
        }
        // Sweep clears every bit, wraps to the tail, evicts the oldest.
        assert_eq!(c.insert(4), Some(1));
    }

    #[test]
    fn touch_miss_is_noop() {
        let mut c = SieveCache::new(2);
        c.insert(1);
        assert!(!c.touch(9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinserting_resident_key_never_evicts() {
        let mut c = SieveCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None); // sets 1's visited bit
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(3), Some(2)); // 1 earned a reprieve
        assert!(c.contains(1));
    }

    #[test]
    fn remove_under_the_hand_is_safe() {
        let mut c = SieveCache::new(3);
        for k in [1, 2, 3] {
            c.insert(k);
        }
        c.touch(1); // first eviction will park the hand mid-list
        assert_eq!(c.insert(4), Some(2));
        // The hand now points at 3 (1's older neighbor after the 2-slot
        // release... exercise removal at and around it either way).
        assert!(c.remove(3));
        assert!(c.remove(1));
        assert_eq!(c.len(), 1);
        c.insert(5);
        c.insert(6);
        assert_eq!(c.len(), 3);
        // Cache still evicts correctly after hand fix-ups.
        assert!(c.insert(7).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_one_cache() {
        let mut c = SieveCache::new(1);
        assert_eq!(c.insert(1), None);
        c.touch(1);
        // Single frame: sweep clears its bit, wraps, evicts it anyway.
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.insert(3), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets_hand_and_frames() {
        let mut c = SieveCache::new(2);
        c.insert(1);
        c.insert(2);
        c.touch(1);
        c.insert(3); // parks the hand somewhere
        c.clear();
        assert!(c.is_empty());
        c.insert(7);
        c.insert(8);
        assert_eq!(c.insert(9), Some(7));
    }

    #[test]
    fn clone_preserves_visited_bits_and_hand() {
        let mut c = SieveCache::new(3);
        for k in [1, 2, 3] {
            c.insert(k);
        }
        c.touch(1);
        let mut d = c.clone();
        // Identical replacement decisions from here on.
        assert_eq!(c.insert(4), d.insert(4));
        assert_eq!(c.insert(5), d.insert(5));
        assert_eq!(c.iter().collect::<Vec<_>>(), d.iter().collect::<Vec<_>>());
    }

    #[test]
    fn advance_hand_on_empty_cache() {
        let c = SieveCache::new(2);
        assert_eq!(c.advance_hand(), None);
    }

    #[test]
    fn advance_hand_finds_unvisited_candidate() {
        let mut c = SieveCache::new(3);
        for k in [1, 2, 3] {
            c.insert(k);
        }
        c.touch(1);
        // 1 is the tail and visited: first step clears it, second lands
        // on 2 which is unvisited.
        assert_eq!(c.advance_hand(), None);
        assert_eq!(c.advance_hand(), Some(2));
        // Candidate is stable until someone acts on it.
        assert_eq!(c.advance_hand(), Some(2));
        assert!(c.remove(2));
        assert_eq!(c.len(), 2);
    }

    /// Reference model: `Vec` of (key, visited), index 0 = head =
    /// newest; the hand is tracked by key so removals can't skew it.
    struct NaiveSieve {
        capacity: usize,
        frames: Vec<(u64, bool)>,
        hand: Option<u64>,
    }

    impl NaiveSieve {
        fn new(capacity: usize) -> Self {
            NaiveSieve {
                capacity,
                frames: Vec::new(),
                hand: None,
            }
        }

        fn position(&self, key: u64) -> Option<usize> {
            self.frames.iter().position(|&(k, _)| k == key)
        }

        fn touch(&mut self, key: u64) -> bool {
            match self.position(key) {
                Some(pos) => {
                    self.frames[pos].1 = true;
                    true
                }
                None => false,
            }
        }

        fn evict(&mut self) -> u64 {
            let mut pos = self
                .hand
                .and_then(|k| self.position(k))
                .unwrap_or(self.frames.len() - 1);
            loop {
                if self.frames[pos].1 {
                    self.frames[pos].1 = false;
                    pos = if pos == 0 {
                        self.frames.len() - 1
                    } else {
                        pos - 1
                    };
                } else {
                    self.hand = if pos == 0 {
                        None
                    } else {
                        Some(self.frames[pos - 1].0)
                    };
                    return self.frames.remove(pos).0;
                }
            }
        }

        fn insert(&mut self, key: u64) -> Option<u64> {
            if self.touch(key) {
                return None;
            }
            let evicted = if self.frames.len() >= self.capacity {
                Some(self.evict())
            } else {
                None
            };
            self.frames.insert(0, (key, false));
            evicted
        }

        fn remove(&mut self, key: u64) -> bool {
            match self.position(key) {
                Some(pos) => {
                    if self.hand == Some(key) {
                        self.hand = if pos == 0 {
                            None
                        } else {
                            Some(self.frames[pos - 1].0)
                        };
                    }
                    self.frames.remove(pos);
                    true
                }
                None => false,
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64),
        Touch(u64),
        Remove(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..40).prop_map(Op::Insert),
            (0u64..40).prop_map(Op::Touch),
            (0u64..40).prop_map(Op::Remove),
        ]
    }

    proptest! {
        #[test]
        fn matches_naive_model(
            capacity in 1usize..12,
            ops in proptest::collection::vec(op_strategy(), 0..400),
        ) {
            let mut fast = SieveCache::new(capacity);
            let mut naive = NaiveSieve::new(capacity);
            for op in ops {
                match op {
                    Op::Insert(k) => prop_assert_eq!(fast.insert(k), naive.insert(k)),
                    Op::Touch(k) => prop_assert_eq!(fast.touch(k), naive.touch(k)),
                    Op::Remove(k) => prop_assert_eq!(fast.remove(k), naive.remove(k)),
                }
                prop_assert_eq!(fast.len(), naive.frames.len());
                prop_assert!(fast.len() <= capacity);
                let fast_order: Vec<u64> = fast.iter().collect();
                let naive_order: Vec<u64> =
                    naive.frames.iter().map(|&(k, _)| k).collect();
                prop_assert_eq!(fast_order, naive_order);
            }
        }
    }

    /// N reader threads hammer `touch` under a read lock while one
    /// writer admits fresh keys under a write lock. The visited bits
    /// raced on are advisory, so the accounting must still balance: no
    /// admission or eviction is lost, and no key is both resident and
    /// evicted at the end.
    #[test]
    fn concurrent_touch_with_locked_evictor_loses_nothing() {
        const CAPACITY: usize = 64;
        const FRESH: u64 = 512;
        const READERS: usize = 4;

        let cache = RwLock::new(SieveCache::new(CAPACITY));
        {
            let mut c = cache.write().unwrap();
            for k in 0..CAPACITY as u64 {
                c.insert(k);
            }
        }

        let evicted = std::thread::scope(|s| {
            for r in 0..READERS {
                let cache = &cache;
                s.spawn(move || {
                    let mut k = r as u64;
                    for _ in 0..20_000 {
                        let c = cache.read().unwrap();
                        c.touch(k % (CAPACITY as u64 + FRESH));
                        k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                });
            }
            let mut evicted = Vec::new();
            for k in CAPACITY as u64..CAPACITY as u64 + FRESH {
                let mut c = cache.write().unwrap();
                evicted.extend(c.insert(k));
            }
            evicted
        });

        let cache = cache.into_inner().unwrap();
        // Every admission once the cache was full evicted exactly one
        // frame, and the survivor/evictee sets partition the key space.
        assert_eq!(evicted.len(), FRESH as usize);
        assert_eq!(cache.len(), CAPACITY);
        let evicted: BTreeSet<u64> = evicted.into_iter().collect();
        assert_eq!(
            evicted.len(),
            FRESH as usize,
            "an eviction was double-counted"
        );
        let resident: BTreeSet<u64> = cache.iter().collect();
        assert!(evicted.is_disjoint(&resident));
        let mut union: BTreeSet<u64> = evicted;
        union.extend(&resident);
        assert_eq!(
            union.len(),
            CAPACITY + FRESH as usize,
            "an admission was lost"
        );
    }

    /// The fully lock-free variant: readers flip visited bits through
    /// `&self` while a single sweeper advances the hand through `&self`.
    /// Nothing is admitted or removed, so residency must be untouched
    /// and every candidate the hand surfaces must be a real resident.
    #[test]
    fn lock_free_readers_race_the_hand() {
        const CAPACITY: usize = 128;
        const READERS: usize = 4;

        let mut cache = SieveCache::new(CAPACITY);
        for k in 0..CAPACITY as u64 {
            cache.insert(k);
        }
        let before: Vec<u64> = cache.iter().collect();
        let cache = &cache;

        let candidates = std::thread::scope(|s| {
            for r in 0..READERS {
                s.spawn(move || {
                    let mut k = r as u64;
                    for _ in 0..50_000 {
                        cache.touch(k % (CAPACITY as u64 * 2));
                        k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                });
            }
            let mut candidates = BTreeSet::new();
            for _ in 0..50_000 {
                if let Some(key) = cache.advance_hand() {
                    candidates.insert(key);
                    // Fake an eviction decision being declined: clear the
                    // stall by marking it visited so the sweep moves on.
                    cache.touch(key);
                }
            }
            candidates
        });

        assert_eq!(cache.len(), CAPACITY);
        assert_eq!(cache.iter().collect::<Vec<u64>>(), before);
        assert!(!candidates.is_empty());
        for key in candidates {
            assert!(cache.contains(key), "hand surfaced a non-resident key");
        }
    }
}
