//! Shared resident-frame bookkeeping for the list-based caches.
//!
//! [`LruCache`](crate::LruCache) and [`SieveCache`](crate::SieveCache)
//! need the same skeleton: a pre-sized [`U64Map`] from block key to slot
//! index, a slab of slots threaded into an intrusive doubly-linked list,
//! and a free list for O(1) slot reuse. Only the *replacement decision*
//! differs — LRU moves hit slots to the front, SIEVE flips a visited bit
//! and scans with a hand — so the structure is generic over a per-slot
//! metadata payload `M` (`()` for LRU, `AtomicBool` for SIEVE) and the
//! policies stay thin wrappers. Observability counters live in those
//! wrappers, never here: each policy counts its own hits and evictions.

use sievestore_types::U64Map;

/// Sentinel slot index for "none".
pub(crate) const NIL: u32 = u32::MAX;

/// One resident frame: its key, its list links, and the policy's
/// per-slot metadata.
#[derive(Debug, Clone)]
pub(crate) struct Slot<M> {
    pub key: u64,
    /// Neighbor toward the head (more recently inserted).
    pub prev: u32,
    /// Neighbor toward the tail (less recently inserted).
    pub next: u32,
    pub meta: M,
}

/// The key index plus intrusive list shared by the list-based caches.
///
/// Invariants: `map` holds exactly the linked slots; `free` holds exactly
/// the unlinked ones; `head`/`tail` delimit the list. Capacity is *not*
/// enforced here — callers evict before linking when full, so the policy
/// owns the replacement decision (and its accounting).
#[derive(Debug, Clone)]
pub(crate) struct FrameList<M> {
    capacity: usize,
    map: U64Map<u32>,
    slots: Vec<Slot<M>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl<M> FrameList<M> {
    /// Creates bookkeeping for at most `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or exceeds `u32::MAX - 1` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        assert!(
            capacity < u32::MAX as usize,
            "cache capacity exceeds slot index range"
        );
        FrameList {
            capacity,
            // Sized to the real capacity: a full-scale 33.5M-frame cache
            // must never rehash mid-replay (the old `min(1 << 20)` cap
            // silently under-reserved above 1M frames).
            map: U64Map::with_capacity(capacity),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// The slot index holding `key`, if resident.
    pub fn index_of(&self, key: u64) -> Option<u32> {
        self.map.get(key).copied()
    }

    pub fn slot(&self, idx: u32) -> &Slot<M> {
        &self.slots[idx as usize]
    }

    #[cfg(test)]
    pub fn head(&self) -> u32 {
        self.head
    }

    pub fn tail(&self) -> u32 {
        self.tail
    }

    /// Unlinks a slot from the list (leaves it in the map; callers pair
    /// this with [`FrameList::link_front`] or [`FrameList::release`]).
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links a slot at the head.
    fn link_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Moves a resident slot to the head (LRU promotion).
    pub fn move_to_front(&mut self, idx: u32) {
        if self.head != idx {
            self.unlink(idx);
            self.link_front(idx);
        }
    }

    /// Inserts a new key at the head, reusing a freed slot when one is
    /// available. The caller guarantees `key` is not resident and has
    /// already made room (this never evicts).
    pub fn push_front(&mut self, key: u64, meta: M) -> u32 {
        debug_assert!(!self.contains(key), "push_front of a resident key");
        let idx = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.key = key;
                s.meta = meta;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                    meta,
                });
                idx
            }
        };
        self.link_front(idx);
        self.map.insert(key, idx);
        idx
    }

    /// Unlinks a slot, removes its key from the index, and recycles the
    /// slot. Returns the key it held.
    pub fn release(&mut self, idx: u32) -> u64 {
        let key = self.slots[idx as usize].key;
        self.unlink(idx);
        self.map.remove(key);
        self.free.push(idx);
        key
    }

    /// Drops every resident frame (slot storage is released too).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Resident keys from head to tail (insertion/recency order).
    pub fn iter_from_head(&self) -> IterFromHead<'_, M> {
        IterFromHead {
            frames: self,
            next: self.head,
        }
    }

    /// A structural copy with each slot's metadata rebuilt by `f` — how
    /// [`SieveCache`](crate::SieveCache) clones through its non-`Clone`
    /// atomics.
    pub fn clone_with<N>(&self, mut f: impl FnMut(&M) -> N) -> FrameList<N> {
        FrameList {
            capacity: self.capacity,
            map: self.map.clone(),
            slots: self
                .slots
                .iter()
                .map(|s| Slot {
                    key: s.key,
                    prev: s.prev,
                    next: s.next,
                    meta: f(&s.meta),
                })
                .collect(),
            free: self.free.clone(),
            head: self.head,
            tail: self.tail,
        }
    }
}

/// Iterator over resident keys in head→tail order.
#[derive(Debug)]
pub(crate) struct IterFromHead<'a, M> {
    frames: &'a FrameList<M>,
    next: u32,
}

impl<M> Iterator for IterFromHead<'_, M> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.next == NIL {
            return None;
        }
        let slot = &self.frames.slots[self.next as usize];
        self.next = slot.next;
        Some(slot.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = FrameList::<()>::new(0);
    }

    #[test]
    fn push_release_and_reuse() {
        let mut f = FrameList::new(4);
        let a = f.push_front(1, ());
        let b = f.push_front(2, ());
        assert_eq!(f.iter_from_head().collect::<Vec<_>>(), vec![2, 1]);
        assert_eq!(f.tail(), a);
        assert_eq!(f.release(b), 2);
        assert!(!f.contains(2));
        // The freed slot is reused for the next insertion.
        assert_eq!(f.push_front(3, ()), b);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut f = FrameList::new(4);
        for k in [1, 2, 3] {
            f.push_front(k, ());
        }
        let idx = f.index_of(1).unwrap();
        f.move_to_front(idx);
        assert_eq!(f.iter_from_head().collect::<Vec<_>>(), vec![1, 3, 2]);
        assert_eq!(f.slot(f.head()).key, 1);
    }

    #[test]
    fn clone_with_preserves_structure() {
        let mut f = FrameList::new(4);
        f.push_front(1, 10u8);
        f.push_front(2, 20u8);
        let g: FrameList<u16> = f.clone_with(|&m| u16::from(m) * 2);
        assert_eq!(g.len(), 2);
        assert_eq!(g.slot(g.head()).meta, 40);
        assert_eq!(
            f.iter_from_head().collect::<Vec<_>>(),
            g.iter_from_head().collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_resets() {
        let mut f = FrameList::new(2);
        f.push_front(1, ());
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.head(), NIL);
        assert_eq!(f.tail(), NIL);
        f.push_front(5, ());
        assert!(f.contains(5));
    }
}
