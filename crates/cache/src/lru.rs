//! A fully-associative block cache with O(1) LRU replacement.
//!
//! The paper's continuous configurations (SieveStore-C, AOD, WMNA,
//! RandSieve-C) all share one cache organization: fully associative over
//! 512-byte frames with LRU replacement (§4). This implementation keeps a
//! hash map from block key to slot plus an intrusive doubly-linked list
//! threaded through a slab of slots — the `FrameList` (`frames.rs`)
//! bookkeeping shared with [`SieveCache`](crate::SieveCache) — so
//! `touch`, `insert` and `remove` are all O(1); a 16 GB cache is 33.5 M
//! frames at full scale and ~130 K at the default 1/256 scale, both
//! comfortably in memory.
//!
//! The key→slot index is a [`sievestore_types::U64Map`] — the workspace's
//! open-addressing table — rather than `std::collections::HashMap`,
//! because `touch` runs once per trace event and SipHash dominates the
//! lookup at that rate.

use sievestore_types::{obs_count, obs_gauge_adjust};

use crate::frames::{FrameList, IterFromHead, NIL};

/// A fully-associative LRU cache over packed block keys.
///
/// # Examples
///
/// ```
/// use sievestore_cache::LruCache;
///
/// let mut cache = LruCache::new(2);
/// assert_eq!(cache.insert(1), None);
/// assert_eq!(cache.insert(2), None);
/// assert!(cache.touch(1));           // 1 becomes MRU
/// assert_eq!(cache.insert(3), Some(2)); // 2 was LRU, evicted
/// assert!(cache.contains(1) && cache.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    /// Head = most-recently-used, tail = least-recently-used.
    frames: FrameList<()>,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or exceeds `u32::MAX - 1` slots.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            frames: FrameList::new(capacity),
        }
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.frames.capacity()
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether `key` is resident (does not affect recency).
    pub fn contains(&self, key: u64) -> bool {
        self.frames.contains(key)
    }

    /// Promotes `key` to MRU if resident; the uninstrumented core of
    /// [`touch`](LruCache::touch), shared with `insert` so internal
    /// promotions never count as accesses.
    fn promote(&mut self, key: u64) -> bool {
        match self.frames.index_of(key) {
            Some(idx) => {
                self.frames.move_to_front(idx);
                true
            }
            None => false,
        }
    }

    /// Marks `key` as most recently used. Returns `true` if it was
    /// resident (a hit), `false` otherwise (no state change).
    pub fn touch(&mut self, key: u64) -> bool {
        let hit = self.promote(key);
        if hit {
            obs_count!(CacheHits, 1);
        } else {
            obs_count!(CacheMisses, 1);
        }
        hit
    }

    /// Inserts `key` as most recently used, evicting the LRU entry if the
    /// cache is full. Returns the evicted key, if any. Inserting a resident
    /// key just refreshes its recency (never evicts).
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        if self.promote(key) {
            return None;
        }
        let evicted = if self.frames.len() >= self.frames.capacity() {
            let lru = self.frames.tail();
            debug_assert_ne!(lru, NIL, "full cache must have a tail");
            Some(self.frames.release(lru))
        } else {
            None
        };
        if evicted.is_some() {
            obs_count!(CacheEvictions, 1);
        } else {
            obs_gauge_adjust!(CacheResidentFrames, 1);
        }
        self.frames.push_front(key, ());
        evicted
    }

    /// Removes `key`; returns whether it was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.frames.index_of(key) {
            Some(idx) => {
                self.frames.release(idx);
                obs_gauge_adjust!(CacheResidentFrames, -1);
                true
            }
            None => false,
        }
    }

    /// Evicts and returns the least-recently-used key, if any.
    pub fn pop_lru(&mut self) -> Option<u64> {
        if self.frames.tail() == NIL {
            return None;
        }
        let key = self.frames.slot(self.frames.tail()).key;
        self.remove(key);
        Some(key)
    }

    /// Drops every resident frame.
    pub fn clear(&mut self) {
        obs_gauge_adjust!(CacheResidentFrames, -(self.frames.len() as i64));
        self.frames.clear();
    }

    /// Iterates over resident keys from most- to least-recently used.
    pub fn iter_mru(&self) -> IterMru<'_> {
        IterMru {
            inner: self.frames.iter_from_head(),
        }
    }
}

/// Iterator over resident keys in MRU→LRU order, from [`LruCache::iter_mru`].
#[derive(Debug)]
pub struct IterMru<'a> {
    inner: IterFromHead<'a, ()>,
}

impl Iterator for IterMru<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }

    #[test]
    fn insert_until_full_then_evict_lru() {
        let mut c = LruCache::new(3);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.insert(3), None);
        assert_eq!(c.len(), 3);
        assert_eq!(c.insert(4), Some(1));
        assert!(!c.contains(1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn touch_changes_eviction_order() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.touch(1));
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn touch_miss_is_noop() {
        let mut c = LruCache::new(2);
        c.insert(1);
        assert!(!c.touch(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.iter_mru().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn reinserting_resident_key_never_evicts() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.len(), 2);
        // 2 is now MRU, so 1 is the eviction victim.
        assert_eq!(c.insert(3), Some(1));
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.insert(3), None); // reuses the freed slot
        assert_eq!(c.len(), 2);
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn pop_lru_pops_in_recency_order() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1);
        assert_eq!(c.pop_lru(), Some(2));
        assert_eq!(c.pop_lru(), Some(3));
        assert_eq!(c.pop_lru(), Some(1));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_mru_orders_from_most_recent() {
        let mut c = LruCache::new(4);
        for k in [1, 2, 3, 4] {
            c.insert(k);
        }
        c.touch(2);
        assert_eq!(c.iter_mru().collect::<Vec<_>>(), vec![2, 4, 3, 1]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.iter_mru().count(), 0);
        assert_eq!(c.insert(5), None);
        assert!(c.contains(5));
    }

    #[test]
    fn capacity_one_cache() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 1);
    }

    /// A deliberately naive reference model: VecDeque front = MRU.
    #[derive(Default)]
    struct NaiveLru {
        capacity: usize,
        order: VecDeque<u64>,
    }

    impl NaiveLru {
        fn new(capacity: usize) -> Self {
            NaiveLru {
                capacity,
                order: VecDeque::new(),
            }
        }
        fn touch(&mut self, key: u64) -> bool {
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
                self.order.push_front(key);
                true
            } else {
                false
            }
        }
        fn insert(&mut self, key: u64) -> Option<u64> {
            if self.touch(key) {
                return None;
            }
            let evicted = if self.order.len() >= self.capacity {
                self.order.pop_back()
            } else {
                None
            };
            self.order.push_front(key);
            evicted
        }
        fn remove(&mut self, key: u64) -> bool {
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
                true
            } else {
                false
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64),
        Touch(u64),
        Remove(u64),
        PopLru,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..40).prop_map(Op::Insert),
            (0u64..40).prop_map(Op::Touch),
            (0u64..40).prop_map(Op::Remove),
            Just(Op::PopLru),
        ]
    }

    proptest! {
        #[test]
        fn matches_naive_model(
            capacity in 1usize..12,
            ops in proptest::collection::vec(op_strategy(), 0..400),
        ) {
            let mut fast = LruCache::new(capacity);
            let mut naive = NaiveLru::new(capacity);
            for op in ops {
                match op {
                    Op::Insert(k) => prop_assert_eq!(fast.insert(k), naive.insert(k)),
                    Op::Touch(k) => prop_assert_eq!(fast.touch(k), naive.touch(k)),
                    Op::Remove(k) => prop_assert_eq!(fast.remove(k), naive.remove(k)),
                    Op::PopLru => prop_assert_eq!(fast.pop_lru(), naive.order.pop_back()),
                }
                prop_assert_eq!(fast.len(), naive.order.len());
                prop_assert!(fast.len() <= capacity);
                let fast_order: Vec<u64> = fast.iter_mru().collect();
                let naive_order: Vec<u64> = naive.order.iter().copied().collect();
                prop_assert_eq!(fast_order, naive_order);
            }
        }
    }
}
