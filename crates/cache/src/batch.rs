//! SieveStore-D's discrete, epoch-batched cache.
//!
//! SieveStore-D (§3.2) allocates and replaces only at epoch boundaries:
//! the blocks the sieve selects at the end of epoch *i* are batch-installed
//! and stay resident — with no replacement — until the end of epoch
//! *i + 1*. If a block selected for the next epoch is already resident, the
//! logical eviction-then-reallocation cancels out and no data moves; only
//! the genuinely new blocks incur allocation-writes.

use sievestore_types::{obs_count, obs_gauge_adjust, U64Set};

/// Summary of one epoch installation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochTransition {
    /// Blocks newly brought in (each incurs an allocation-write).
    pub allocated: Vec<u64>,
    /// Blocks resident in both epochs (moves cancelled).
    pub retained: u64,
    /// Blocks dropped from the previous epoch.
    pub evicted: u64,
    /// Selected blocks that did not fit within capacity.
    pub overflowed: u64,
}

/// A cache whose contents change only at epoch boundaries.
///
/// # Examples
///
/// ```
/// use sievestore_cache::BatchCache;
///
/// let mut cache = BatchCache::new(3);
/// let t1 = cache.install_epoch([1, 2, 3]);
/// assert_eq!(t1.allocated.len(), 3);
///
/// // Block 2 persists: no move for it, one allocation, two evictions.
/// let t2 = cache.install_epoch([2, 9]);
/// assert_eq!(t2.allocated, vec![9]);
/// assert_eq!(t2.retained, 1);
/// assert_eq!(t2.evicted, 2);
/// assert!(cache.contains(2) && cache.contains(9) && !cache.contains(1));
/// ```
#[derive(Debug, Clone)]
pub struct BatchCache {
    capacity: usize,
    resident: U64Set,
}

impl BatchCache {
    /// Creates an epoch cache holding at most `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        BatchCache {
            capacity,
            resident: U64Set::new(),
        }
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether `key` is resident this epoch.
    pub fn contains(&self, key: u64) -> bool {
        let hit = self.resident.contains(key);
        if hit {
            obs_count!(CacheHits, 1);
        } else {
            obs_count!(CacheMisses, 1);
        }
        hit
    }

    /// Replaces the resident set with `selected`, computing the transition.
    /// Duplicate keys in `selected` are installed once. Selection beyond
    /// capacity is truncated (in iteration order) and reported in
    /// [`EpochTransition::overflowed`].
    pub fn install_epoch(&mut self, selected: impl IntoIterator<Item = u64>) -> EpochTransition {
        let mut next = U64Set::new();
        let mut allocated = Vec::new();
        let mut retained = 0u64;
        let mut overflowed = 0u64;
        for key in selected {
            if next.len() >= self.capacity {
                if !next.contains(key) {
                    overflowed += 1;
                }
                continue;
            }
            if !next.insert(key) {
                continue; // duplicate in the selection
            }
            if self.resident.contains(key) {
                retained += 1;
            } else {
                allocated.push(key);
            }
        }
        let evicted = (self.resident.len() as u64) - retained;
        obs_count!(CacheEvictions, evicted);
        // Adjust (not set): sharded replays keep one BatchCache per shard
        // and the deltas must sum into a meaningful ensemble total.
        obs_gauge_adjust!(CacheResidentFrames, allocated.len() as i64 - evicted as i64);
        self.resident = next;
        EpochTransition {
            allocated,
            retained,
            evicted,
            overflowed,
        }
    }

    /// Iterates over resident keys in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.resident.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = BatchCache::new(0);
    }

    #[test]
    fn first_epoch_allocates_everything() {
        let mut c = BatchCache::new(10);
        let t = c.install_epoch([5, 6, 7]);
        assert_eq!(t.allocated.len(), 3);
        assert_eq!(t.retained, 0);
        assert_eq!(t.evicted, 0);
        assert_eq!(t.overflowed, 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn moves_cancel_for_retained_blocks() {
        let mut c = BatchCache::new(10);
        c.install_epoch([1, 2, 3, 4]);
        let t = c.install_epoch([3, 4, 5]);
        assert_eq!(t.allocated, vec![5]);
        assert_eq!(t.retained, 2);
        assert_eq!(t.evicted, 2);
    }

    #[test]
    fn empty_selection_evicts_all() {
        let mut c = BatchCache::new(4);
        c.install_epoch([1, 2]);
        let t = c.install_epoch(std::iter::empty());
        assert_eq!(t.evicted, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn overflow_is_truncated_and_counted() {
        let mut c = BatchCache::new(2);
        let t = c.install_epoch([1, 2, 3, 4]);
        assert_eq!(c.len(), 2);
        assert_eq!(t.overflowed, 2);
        assert!(c.contains(1) && c.contains(2));
    }

    #[test]
    fn duplicates_in_selection_install_once() {
        let mut c = BatchCache::new(5);
        let t = c.install_epoch([7, 7, 7, 8]);
        assert_eq!(c.len(), 2);
        assert_eq!(t.allocated.len(), 2);
        assert_eq!(t.overflowed, 0);
    }

    proptest! {
        #[test]
        fn transition_bookkeeping_is_consistent(
            capacity in 1usize..20,
            first in proptest::collection::hash_set(0u64..50, 0..30),
            second in proptest::collection::hash_set(0u64..50, 0..30),
        ) {
            let mut c = BatchCache::new(capacity);
            let t1 = c.install_epoch(first.iter().copied());
            let resident_after_first = c.len() as u64;
            prop_assert_eq!(t1.allocated.len() as u64, resident_after_first);
            prop_assert!(c.len() <= capacity);

            let t2 = c.install_epoch(second.iter().copied());
            // Everything resident before is either retained or evicted.
            prop_assert_eq!(t2.retained + t2.evicted, resident_after_first);
            // Everything resident now is either retained or newly allocated.
            prop_assert_eq!(t2.retained + t2.allocated.len() as u64, c.len() as u64);
            // Overflow + installed covers the (deduplicated) selection.
            prop_assert_eq!(
                t2.overflowed + c.len() as u64,
                second.len() as u64
            );
            prop_assert!(c.len() <= capacity);
            // Residency matches membership in the selection.
            for k in c.iter() {
                prop_assert!(second.contains(&k));
            }
        }
    }
}
