//! Block caches for the SieveStore reproduction.
//!
//! Three cache organizations, matching the paper's two caching models
//! plus a lock-free-hit replacement for the parallel replay engine:
//!
//! * [`LruCache`] — fully-associative, O(1) LRU; the default for every
//!   *continuous* configuration (SieveStore-C, AOD, WMNA, RandSieve-C).
//! * [`SieveCache`] — fully-associative SIEVE (NSDI '24): hits flip an
//!   atomic visited bit through `&self` instead of moving list nodes, so
//!   the hit path takes no write lock. Selectable for the continuous
//!   configurations via [`EvictionPolicy`].
//! * [`BatchCache`] — epoch-batched residency with move-cancelling
//!   reinstallation; the cache of the *discrete* SieveStore-D.
//!
//! [`LruCache`] and [`SieveCache`] share their resident-frame
//! bookkeeping (pre-sized key index, slot slab, intrusive list) through
//! one private module, so the policies differ only in the replacement
//! decision and its per-policy observability counters.
//!
//! All of them operate on packed [`sievestore_types::GlobalBlock`] keys
//! supplied as raw `u64`s, so they are usable with any 64-bit keyed
//! workload.
//!
//! # Examples
//!
//! ```
//! use sievestore_cache::LruCache;
//!
//! let mut cache = LruCache::new(100);
//! cache.insert(42);
//! assert!(cache.touch(42)); // hit
//! assert!(!cache.touch(7)); // miss
//! ```

#![warn(missing_docs)]

pub mod batch;
mod frames;
pub mod lru;
pub mod sieve;

pub use batch::{BatchCache, EpochTransition};
pub use lru::{IterMru, LruCache};
pub use sieve::{IterSieve, SieveCache};

use std::fmt;
use std::str::FromStr;

/// Replacement policy for the continuous configurations' block cache.
///
/// Parsed from CLI flags (`--eviction lru|sieve`) and threaded through
/// `SimConfig` down to the appliance builder. Discrete configurations
/// (SieveStore-D and friends) use the epoch-batched [`BatchCache`]
/// regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Classic move-to-front LRU ([`LruCache`]).
    #[default]
    Lru,
    /// SIEVE: visited bit on hit, hand-moving eviction ([`SieveCache`]).
    Sieve,
}

impl EvictionPolicy {
    /// Stable lowercase name, matching what [`FromStr`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Sieve => "sieve",
        }
    }
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "lru" => Ok(EvictionPolicy::Lru),
            "sieve" => Ok(EvictionPolicy::Sieve),
            other => Err(format!(
                "unknown eviction policy {other:?} (expected \"lru\" or \"sieve\")"
            )),
        }
    }
}

#[cfg(test)]
mod eviction_policy_tests {
    use super::EvictionPolicy;

    #[test]
    fn round_trips_through_name() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Sieve] {
            assert_eq!(policy.name().parse::<EvictionPolicy>(), Ok(policy));
            assert_eq!(policy.to_string(), policy.name());
        }
    }

    #[test]
    fn rejects_unknown_names() {
        assert!("fifo".parse::<EvictionPolicy>().is_err());
        assert!("LRU".parse::<EvictionPolicy>().is_err());
    }

    #[test]
    fn defaults_to_lru() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }
}
