//! Block caches for the SieveStore reproduction.
//!
//! Two cache organizations, matching the paper's two caching models:
//!
//! * [`LruCache`] — fully-associative, O(1) LRU; shared by every
//!   *continuous* configuration (SieveStore-C, AOD, WMNA, RandSieve-C).
//! * [`BatchCache`] — epoch-batched residency with move-cancelling
//!   reinstallation; the cache of the *discrete* SieveStore-D.
//!
//! Both operate on packed [`sievestore_types::GlobalBlock`] keys supplied
//! as raw `u64`s, so they are usable with any 64-bit keyed workload.
//!
//! # Examples
//!
//! ```
//! use sievestore_cache::LruCache;
//!
//! let mut cache = LruCache::new(100);
//! cache.insert(42);
//! assert!(cache.touch(42)); // hit
//! assert!(!cache.touch(7)); // miss
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod lru;

pub use batch::{BatchCache, EpochTransition};
pub use lru::{IterMru, LruCache};
