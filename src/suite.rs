#![warn(missing_docs)]

//! The suite crate hosts workspace-level integration tests and examples.
//!
//! It re-exports nothing; depend on the individual `sievestore-*` crates
//! directly. See `examples/` and `tests/` at the workspace root.
