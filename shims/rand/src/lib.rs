//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`rngs::SmallRng`] (an xoshiro256++ generator), [`SeedableRng`],
//! [`Rng`] and the [`RngExt`] convenience methods (`random`,
//! `random_range`, `random_bool`). Streams are deterministic per seed,
//! which is all the simulators and tests rely on; they are **not** the
//! same streams as the real `rand` crate's.

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Maps a random word into `0..span` (Lemire-style multiply-shift).
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let k = rng.random_range(0..8u64);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let k = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&k));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }
}
