//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`black_box`], [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a minimal
//! measure-and-print implementation instead of criterion's statistics.
//! Each benchmark runs a short calibrated loop and reports mean ns/iter.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id naming only the parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` value per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_with_setup<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the work performed per iteration for reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for compatibility; the shim sizes runs by time instead.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for compatibility; the shim uses a fixed measuring time.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
    }

    /// Runs one benchmark closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        // Calibrate: grow the iteration count until the run is long
        // enough to time meaningfully, then report the last measurement.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        loop {
            f(&mut bencher);
            if bencher.elapsed >= self.criterion.min_run || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 4;
        }
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.0} elem/s)", n as f64 * 1e9 / ns_per_iter)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.0} B/s)", n as f64 * 1e9 / ns_per_iter)
            }
            None => String::new(),
        };
        println!(
            "bench {}/{}: {:.1} ns/iter over {} iters{}",
            self.name, label, ns_per_iter, bencher.iters, rate
        );
    }

    /// Ends the group (reporting is per-benchmark in the shim).
    pub fn finish(self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    min_run: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short runs: these benches are smoke-level in the shim.
            min_run: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            criterion: self,
        }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            min_run: Duration::from_micros(50),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
