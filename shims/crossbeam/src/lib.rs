//! Offline stand-in for the `crossbeam` scoped-thread and channel APIs,
//! built on `std::thread::scope` and `std::sync::mpsc`.
//!
//! Two surfaces are provided — the two entry points the simulation
//! crates use:
//!
//! * [`thread::scope`] — scoped fan-out over borrowed data. As in
//!   crossbeam, `scope` returns `Err` when any spawned thread panicked
//!   instead of propagating the panic.
//! * [`channel`] — `unbounded`/`bounded` MPSC channels with crossbeam's
//!   `Sender`/`Receiver` names, used by the sharded replay engine to
//!   stream work to its partition workers.

/// Bounded single-producer single-consumer rings (the surface of the
/// `crossbeam`-family `rtrb`/`ArrayQueue` idiom, restricted to SPSC).
///
/// A fixed-capacity circular buffer with one producer handle and one
/// consumer handle. Push and pop are wait-free: each side owns its own
/// index and only *loads* the other side's, so the hot path is two
/// atomic operations and a slot move — no locks, no allocation. The
/// sharded node server uses one ring per ordered worker pair to forward
/// cross-shard requests without any shared lock.
pub mod spsc {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Cache-line padding so the producer's and consumer's indices never
    /// share a line (the classic false-sharing trap in ring buffers).
    #[repr(align(64))]
    struct CachePadded<T>(T);

    struct Ring<T> {
        /// Slot storage; slot `i % capacity` is owned by the producer
        /// until published (tail passes it), then by the consumer until
        /// consumed (head passes it).
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        /// Next slot the consumer will take.
        head: CachePadded<AtomicUsize>,
        /// Next slot the producer will fill.
        tail: CachePadded<AtomicUsize>,
    }

    // SAFETY: the head/tail protocol hands each slot to exactly one side
    // at a time; `T: Send` is all that crossing threads requires.
    unsafe impl<T: Send> Sync for Ring<T> {}
    unsafe impl<T: Send> Send for Ring<T> {}

    impl<T> Drop for Ring<T> {
        fn drop(&mut self) {
            let head = self.head.0.load(Ordering::Relaxed);
            let tail = self.tail.0.load(Ordering::Relaxed);
            for i in head..tail {
                let slot = &self.slots[i % self.slots.len()];
                // SAFETY: slots in [head, tail) hold initialized values
                // that neither side will touch again (both handles are
                // gone once the ring drops).
                unsafe { (*slot.get()).assume_init_drop() };
            }
        }
    }

    /// The producing half of a ring; `Send` but not clonable — exactly
    /// one producer may exist.
    pub struct Producer<T> {
        ring: Arc<Ring<T>>,
        /// Cached head: the producer re-reads the shared head only when
        /// the cache says the ring looks full.
        head_cache: usize,
    }

    /// The consuming half of a ring; `Send` but not clonable.
    pub struct Consumer<T> {
        ring: Arc<Ring<T>>,
        /// Cached tail, refreshed only when the ring looks empty.
        tail_cache: usize,
    }

    /// Creates a bounded SPSC ring holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        assert!(capacity > 0, "spsc ring capacity must be nonzero");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let ring = Arc::new(Ring {
            slots,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        });
        (
            Producer {
                ring: Arc::clone(&ring),
                head_cache: 0,
            },
            Consumer {
                ring,
                tail_cache: 0,
            },
        )
    }

    impl<T> Producer<T> {
        /// Appends `value`, or returns it back if the ring is full.
        ///
        /// # Errors
        ///
        /// Returns `Err(value)` when every slot is occupied.
        pub fn push(&mut self, value: T) -> Result<(), T> {
            let tail = self.ring.tail.0.load(Ordering::Relaxed);
            if tail - self.head_cache == self.ring.slots.len() {
                self.head_cache = self.ring.head.0.load(Ordering::Acquire);
                if tail - self.head_cache == self.ring.slots.len() {
                    return Err(value);
                }
            }
            let slot = &self.ring.slots[tail % self.ring.slots.len()];
            // SAFETY: slot `tail` is unpublished, so the producer owns it.
            unsafe { (*slot.get()).write(value) };
            self.ring.tail.0.store(tail + 1, Ordering::Release);
            Ok(())
        }

        /// Messages currently queued (racy snapshot, like `Sender::len`).
        pub fn len(&self) -> usize {
            let tail = self.ring.tail.0.load(Ordering::Relaxed);
            let head = self.ring.head.0.load(Ordering::Relaxed);
            tail.saturating_sub(head)
        }

        /// Whether no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The fixed slot count.
        pub fn capacity(&self) -> usize {
            self.ring.slots.len()
        }
    }

    impl<T> Consumer<T> {
        /// Takes the oldest queued value, or `None` when the ring is
        /// empty.
        pub fn pop(&mut self) -> Option<T> {
            let head = self.ring.head.0.load(Ordering::Relaxed);
            if head == self.tail_cache {
                self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
                if head == self.tail_cache {
                    return None;
                }
            }
            let slot = &self.ring.slots[head % self.ring.slots.len()];
            // SAFETY: slot `head` was published by the producer and not
            // yet consumed, so the consumer owns it.
            let value = unsafe { (*slot.get()).assume_init_read() };
            self.ring.head.0.store(head + 1, Ordering::Release);
            Some(value)
        }

        /// Messages currently queued (racy snapshot).
        pub fn len(&self) -> usize {
            let tail = self.ring.tail.0.load(Ordering::Relaxed);
            let head = self.ring.head.0.load(Ordering::Relaxed);
            tail.saturating_sub(head)
        }

        /// Whether no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The error payload of a panicked scope.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle; `spawn` borrows data living at least as long as
    /// the enclosing [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; joins every spawned thread before
    /// returning. Returns `Err` if any spawned thread (or `f` itself)
    /// panicked.
    ///
    /// # Errors
    ///
    /// The boxed panic payload of the first observed panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// MPSC channels (the `crossbeam::channel` module surface).
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of a channel. Cloneable; all clones feed the same
    /// receiver.
    pub struct Sender<T> {
        inner: SenderKind<T>,
        queued: Arc<AtomicUsize>,
    }

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: match &self.inner {
                    SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
                    SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                },
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(s) => s.send(value),
                SenderKind::Bounded(s) => s.send(value),
            }?;
            self.queued.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// The number of messages currently queued in the channel
        /// (crossbeam's `Sender::len`). A racy snapshot, like the
        /// original: the receiver may drain concurrently.
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::Relaxed)
        }

        /// Whether the channel holds no queued messages right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        fn note_taken(&self) {
            // Saturating at zero: a send's increment may land after the
            // matched receive on another thread observes the value.
            let _ = self
                .queued
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
        }

        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once every sender is dropped and the
        /// channel is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let value = self.inner.recv()?;
            self.note_taken();
            Ok(value)
        }

        /// Returns a pending value without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when no value is waiting, or
        /// [`TryRecvError::Disconnected`] once every sender is dropped
        /// and the channel is drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let value = self.inner.try_recv()?;
            self.note_taken();
            Ok(value)
        }

        /// Iterates over received values until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: SenderKind::Unbounded(tx),
                queued: Arc::clone(&queued),
            },
            Receiver { inner: rx, queued },
        )
    }

    /// Creates a channel that holds at most `cap` in-flight values;
    /// senders block when it is full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: SenderKind::Bounded(tx),
                queued: Arc::clone(&queued),
            },
            Receiver { inner: rx, queued },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::{channel, thread};

    #[test]
    fn scope_joins_borrowing_threads() {
        let mut counts = vec![0u64; 4];
        thread::scope(|scope| {
            for c in &mut counts {
                scope.spawn(move |_| {
                    *c = 7;
                });
            }
        })
        .expect("no panics");
        assert_eq!(counts, vec![7, 7, 7, 7]);
    }

    #[test]
    fn panicking_worker_surfaces_as_err() {
        let result = thread::scope(|scope| {
            scope.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn unbounded_channel_carries_values_across_threads() {
        let (tx, rx) = channel::unbounded::<u64>();
        thread::scope(|scope| {
            let tx2 = tx.clone();
            scope.spawn(move |_| {
                for i in 0..10 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let sum: u64 = rx.iter().sum();
            assert_eq!(sum, 45);
        })
        .expect("no panics");
    }

    #[test]
    fn bounded_channel_applies_backpressure_and_delivers_in_order() {
        let (tx, rx) = channel::bounded::<u32>(2);
        thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        })
        .expect("no panics");
    }

    #[test]
    fn sender_len_tracks_queue_depth() {
        let (tx, rx) = channel::bounded::<u8>(4);
        assert_eq!(tx.len(), 0);
        assert!(tx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(tx.clone().len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(tx.len(), 0);
        assert!(rx.try_recv().is_err());
        assert_eq!(tx.len(), 0);
    }

    #[test]
    fn receiver_reports_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn spsc_ring_rejects_overflow_and_preserves_order() {
        let (mut tx, mut rx) = super::spsc::ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        assert!(tx.is_empty() && rx.is_empty());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring returns the value");
        assert_eq!(tx.len(), 4);
        assert_eq!(rx.pop(), Some(0));
        tx.push(4).unwrap();
        for expect in 1..=4 {
            assert_eq!(rx.pop(), Some(expect));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn spsc_ring_streams_across_threads() {
        let (mut tx, mut rx) = super::spsc::ring::<u64>(8);
        thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..10_000u64 {
                    let mut v = i;
                    while let Err(back) = tx.push(v) {
                        v = back;
                        std::hint::spin_loop();
                    }
                }
            });
            let mut expect = 0u64;
            while expect < 10_000 {
                if let Some(got) = rx.pop() {
                    assert_eq!(got, expect, "ring must preserve order");
                    expect += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        })
        .expect("no panics");
    }

    #[test]
    fn spsc_ring_drops_undelivered_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] Arc<()>);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = super::spsc::ring::<Counted>(4);
        let token = Arc::new(());
        for _ in 0..3 {
            assert!(tx.push(Counted(Arc::clone(&token))).is_ok());
        }
        drop(rx.pop());
        let before = DROPS.load(Ordering::SeqCst);
        drop((tx, rx));
        assert_eq!(
            DROPS.load(Ordering::SeqCst) - before,
            2,
            "undelivered slots must drop their values"
        );
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
