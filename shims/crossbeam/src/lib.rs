//! Offline stand-in for the `crossbeam` scoped-thread API, built on
//! `std::thread::scope`.
//!
//! Only `crossbeam::thread::scope` is provided — the one entry point the
//! simulation crates use for fan-out over borrowed data. As in crossbeam,
//! `scope` returns `Err` when any spawned thread panicked instead of
//! propagating the panic.

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The error payload of a panicked scope.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle; `spawn` borrows data living at least as long as
    /// the enclosing [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; joins every spawned thread before
    /// returning. Returns `Err` if any spawned thread (or `f` itself)
    /// panicked.
    ///
    /// # Errors
    ///
    /// The boxed panic payload of the first observed panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_borrowing_threads() {
        let mut counts = vec![0u64; 4];
        thread::scope(|scope| {
            for c in &mut counts {
                scope.spawn(move |_| {
                    *c = 7;
                });
            }
        })
        .expect("no panics");
        assert_eq!(counts, vec![7, 7, 7, 7]);
    }

    #[test]
    fn panicking_worker_surfaces_as_err() {
        let result = thread::scope(|scope| {
            scope.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
