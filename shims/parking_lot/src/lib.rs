//! Offline stand-in for `parking_lot`, built on `std::sync`.
//!
//! Exposes the `parking_lot` lock API surface this workspace uses
//! ([`Mutex`], [`RwLock`]) with the same no-poisoning semantics: a
//! panicked holder does not poison the lock for later users.

use std::fmt;

pub use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
