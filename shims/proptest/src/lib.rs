//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the slice of the proptest API the workspace uses: the [`proptest!`]
//! macro, [`prop_assert!`]/[`prop_assert_eq!`], integer-range and tuple
//! strategies, [`collection::vec`]/[`collection::hash_set`],
//! [`prop_oneof!`], [`Just`], `prop_map`/`prop_flat_map`/`prop_filter`,
//! [`sample::select`], simple `"[class]{m,n}"` string patterns, and
//! [`ProptestConfig`].
//!
//! Semantics: each property runs `cases` times with inputs drawn from a
//! deterministic per-test RNG. There is **no shrinking** — a failing case
//! reports its case index and seed so it can be replayed, which is enough
//! for a reproducible CI signal.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A failed test case (the `Err` side of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: `f` maps each drawn value to the
    /// strategy the final value is drawn from (e.g. a length draw
    /// followed by a vector of exactly that length).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Discards drawn values failing `pred`, redrawing in their place.
    /// `whence` labels the filter in the panic raised if the predicate
    /// keeps rejecting (the shim has no global rejection budget).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Boxes the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// The result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded redraws keep a mis-specified filter loud instead of
        // hanging the test runner.
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive draws; loosen the \
             source strategy or the predicate",
            self.whence
        );
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
}

/// A strategy producing clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Wrapping u64 arithmetic handles negative bounds: the
                // offset is drawn below the true span and added back onto
                // the start modulo 2^64.
                let span = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64 as u64)
                    .wrapping_sub(lo as i64 as u64)
                    .wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Simple string pattern strategies: `"[class]{m,n}"` with literal
/// characters and `a-z` ranges inside the class.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{m,n}` (or a bare literal, generated verbatim via a
/// single-string alphabet of length bounds 1..=1? no — literals map to a
/// fixed output). Panics on unsupported patterns so misuse is loud.
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    assert!(
        chars.first() == Some(&'['),
        "unsupported proptest string pattern {pattern:?}: expected \"[class]{{m,n}}\""
    );
    let close = pattern.find(']').expect("pattern class never closed");
    let class: Vec<char> = pattern[1..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "bad class range in {pattern:?}");
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in {pattern:?}");
    let rest = &pattern[close + 1..];
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else if rest == "*" {
        (0, 32)
    } else if rest == "+" {
        (1, 32)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported quantifier in {pattern:?}"));
        match inner.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad lower bound"),
                hi.trim().parse().expect("bad upper bound"),
            ),
            None => {
                let n = inner.trim().parse().expect("bad repeat count");
                (n, n)
            }
        }
    };
    assert!(min <= max, "bad quantifier bounds in {pattern:?}");
    (alphabet, min, max)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Bounds on a generated collection's size.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors of `element` values with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for hash sets drawn from `element` values; duplicates
    /// are dropped, so produced sets may be smaller than requested.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Value-sampling strategies (`proptest::sample`).
pub mod sample {
    use super::*;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// A uniform choice among the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(
            !options.is_empty(),
            "sample::select needs at least one option"
        );
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Drives one property: `cases` deterministic runs, panicking with a
/// replayable case index on the first failure.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test seed: FNV-1a over the property name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for index in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("property {name} failed at case {index} (seed {seed:#x}): {e}");
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // The internal `@config` arm must come first: the trailing
    // catch-all would otherwise swallow the recursive call and expand
    // forever (hitting the compiler's recursion limit).
    (@config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    // `mut` is needed whenever $body mutates captured
                    // bindings (the closure is then FnMut), but not all
                    // bodies do.
                    #[allow(unused_mut)]
                    let mut run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    run()
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_bounds() {
        let mut rng = super::TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c9 .]{0,5}", &mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| "abc9 .".contains(c)), "bad char in {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_properties_panic_with_case_index() {
        super::run_cases(ProptestConfig::with_cases(10), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u64..10,
            xs in super::collection::vec(0u8..4, 0..9),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(xs.len() < 9);
            prop_assert!(xs.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_map_and_just_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            Just(100u32),
        ]) {
            prop_assert!(v == 100 || v < 10);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn flat_map_draws_dependent_strategies(
            xs in (1usize..6).prop_flat_map(|len| super::collection::vec(0u8..10, len)),
        ) {
            prop_assert!((1..6).contains(&xs.len()));
        }
    }

    proptest! {
        #[test]
        fn filter_redraws_rejected_values(
            odd in (0u64..100).prop_filter("odd only", |v| v % 2 == 1),
        ) {
            prop_assert_eq!(odd % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "rejected 1000 consecutive draws")]
    fn impossible_filter_panics_with_its_label() {
        let mut rng = super::TestRng::new(7);
        let never = (0u64..10).prop_filter("never", |_| false);
        let _ = Strategy::generate(&never, &mut rng);
    }

    proptest! {
        #[test]
        fn signed_ranges_generate_in_bounds(
            x in -50i64..-10,
            y in -3i8..=3,
        ) {
            prop_assert!((-50..-10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }
    }

    proptest! {
        #[test]
        fn select_draws_only_listed_values(
            v in super::sample::select(vec![2u32, 3, 5, 7]),
        ) {
            prop_assert!([2, 3, 5, 7].contains(&v));
        }
    }
}
