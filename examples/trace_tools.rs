//! Trace tooling: generate, serialize, re-read and characterize a trace.
//!
//! Run with: `cargo run --release --example trace_tools`
//!
//! Shows the trace-facing half of the API: the calibrated synthetic
//! generator, the binary trace codec, CSV export and the popularity-skew
//! analytics that underpin the paper's workload observations O1/O2.

use sievestore_analysis::{popularity_cdf, BlockCounts, PopularityBins};
use sievestore_trace::{
    write_csv, EnsembleConfig, SyntheticTrace, TraceReader, TraceStats, TraceWriter,
};
use sievestore_types::{Day, SieveError};

fn main() -> Result<(), SieveError> {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(1234))?;
    let day = Day::new(1);
    let requests = trace.day_requests(day);

    // Round-trip the day through the binary trace format.
    let mut bytes = Vec::new();
    let mut writer = TraceWriter::with_count(&mut bytes, requests.len() as u64)?;
    for r in &requests {
        writer.write(r)?;
    }
    writer.finish()?;
    let reread: Result<Vec<_>, _> = TraceReader::new(bytes.as_slice())?.collect();
    let reread = reread?;
    assert_eq!(reread, requests);
    println!(
        "binary codec: {} requests -> {} bytes -> identical round-trip",
        requests.len(),
        bytes.len()
    );

    // CSV export (MSR-trace-shaped) of the first few requests.
    let mut csv = Vec::new();
    write_csv(&mut csv, requests.iter().take(3))?;
    println!("\nCSV preview:\n{}", String::from_utf8_lossy(&csv));

    // Summary statistics.
    let stats: TraceStats = requests.iter().collect();
    let d = stats.day(day).expect("day observed");
    println!(
        "day {}: {} requests, {} block accesses, {} unique blocks, \
         {:.0}% reads, mean request {:.1} blocks",
        day.index(),
        d.requests,
        d.block_accesses,
        d.unique_blocks,
        100.0 * d.read_fraction(),
        d.mean_request_blocks(),
    );

    // Popularity skew: the shape SieveStore exploits.
    let counts = BlockCounts::from_requests(requests.iter());
    let cdf = popularity_cdf(&counts, 1000);
    let bins = PopularityBins::from_counts(&counts, 1000);
    println!(
        "skew: top-1% of blocks absorb {:.1}% of accesses; \
         {:.1}% of blocks see <= 4 accesses; hottest bin averages {:.0} accesses",
        100.0 * cdf.top1_share(),
        100.0 * counts.fraction_with_at_most(4),
        bins.bins().first().map_or(0.0, |b| b.mean_count),
    );
    Ok(())
}
