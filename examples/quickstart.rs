//! Quickstart: build a SieveStore appliance and watch sieving work.
//!
//! Run with: `cargo run --example quickstart`
//!
//! We feed the appliance a stream with the shape SieveStore is built for —
//! a small hot set buried in a mass of one-touch cold blocks — and compare
//! the continuous sieve (SieveStore-C) against allocate-on-demand.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore::{PolicySpec, SieveStore, SieveStoreBuilder};
use sievestore_sieve::TwoTierConfig;
use sievestore_types::{Micros, RequestKind, SieveError};

/// 35 % of accesses go to 256 hot blocks; the rest are one-touch.
fn workload(n: usize, seed: u64) -> Vec<(u64, RequestKind)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_cold = 1_000_000u64;
    (0..n)
        .map(|_| {
            let key = if rng.random::<f64>() < 0.35 {
                rng.random_range(0..256u64)
            } else {
                next_cold += 1;
                next_cold
            };
            let kind = if rng.random::<f64>() < 0.75 {
                RequestKind::Read
            } else {
                RequestKind::Write
            };
            (key, kind)
        })
        .collect()
}

fn drive(store: &mut SieveStore, accesses: &[(u64, RequestKind)]) {
    for (i, &(key, kind)) in accesses.iter().enumerate() {
        // Spread the stream over two hours of virtual time.
        let now = Micros::from_secs((i as u64 * 7200) / accesses.len() as u64);
        store.access(key, kind, now);
    }
}

fn main() -> Result<(), SieveError> {
    let accesses = workload(200_000, 7);

    let mut sieved = SieveStoreBuilder::new()
        .capacity_blocks(4_096)
        .policy(PolicySpec::SieveStoreC(
            TwoTierConfig::paper_default().with_imct_entries(1 << 16),
        ))
        .build()?;
    let mut unsieved = SieveStoreBuilder::new()
        .capacity_blocks(4_096)
        .policy(PolicySpec::Aod)
        .build()?;

    drive(&mut sieved, &accesses);
    drive(&mut unsieved, &accesses);

    println!(
        "workload: {} block accesses, 35% to 256 hot blocks\n",
        accesses.len()
    );
    for store in [&sieved, &unsieved] {
        let s = store.stats();
        println!(
            "{:<14} hit ratio {:5.1}%   allocation-writes {:>7}   resident blocks {:>5}",
            store.policy_name(),
            100.0 * s.hit_ratio(),
            s.allocation_writes,
            store.len_blocks(),
        );
    }
    println!(
        "\nThe sieve allocates only blocks that earned a frame (≈ the hot set):\n\
         ~{}x fewer SSD allocation-writes at a comparable hit ratio. On real\n\
         ensemble workloads (see the experiments harness) the sieved cache\n\
         also hits substantially more often, because unsieved churn evicts\n\
         medium-popularity blocks.",
        unsieved.stats().allocation_writes / sieved.stats().allocation_writes.max(1)
    );
    Ok(())
}
