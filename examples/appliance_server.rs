//! The SieveStore appliance as a live TCP service.
//!
//! Run with: `cargo run --release --example appliance_server`
//!
//! Spins up a node (the paper's Figure-4 box, with TCP standing in for
//! iSCSI) over a file-backed "ensemble", then drives it from client
//! connections: a cold scan that the sieve refuses to cache, followed by
//! a hot working set that earns its frames.

use sievestore::PolicySpec;
use sievestore_node::{DataCache, FileBacking, NodeClient, NodeServerBuilder};
use sievestore_sieve::TwoTierConfig;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("sievestore-appliance-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let backing = FileBacking::open(dir.join("ensemble.img"))?;

    let policy = PolicySpec::SieveStoreC(
        TwoTierConfig::paper_default()
            .with_imct_entries(1 << 14)
            .with_thresholds(3, 2),
    );
    let cache =
        DataCache::new(backing, policy, 4_096).map_err(|e| std::io::Error::other(e.to_string()))?;
    let server = NodeServerBuilder::new("127.0.0.1:0").serve(cache)?;
    println!("SieveStore node listening on {}", server.addr());

    let mut client = NodeClient::connect(server.addr())?;

    // Populate some blocks on the ensemble through the node.
    for key in 0..64u64 {
        client.write_block(key, &[key as u8; 512])?;
    }

    // Cold scan: 2,000 one-touch blocks. The sieve bypasses them all.
    for key in 10_000..12_000u64 {
        let (_, hit) = client.read_block(key)?;
        assert!(!hit);
    }
    let after_scan = client.stats()?;
    println!(
        "after cold scan : {:>5} accesses, {:>4} allocation-writes, {:>4} resident blocks",
        after_scan.read_misses
            + after_scan.write_misses
            + after_scan.read_hits
            + after_scan.write_hits,
        after_scan.allocation_writes,
        after_scan.resident_blocks,
    );

    // Hot working set: 8 blocks re-read repeatedly earn their frames.
    let mut hits = 0;
    for round in 0..10 {
        for key in 0..8u64 {
            let (data, hit) = client.read_block(key)?;
            assert_eq!(data, [key as u8; 512]);
            hits += hit as u32;
        }
        if round == 9 {
            let s = client.stats()?;
            println!(
                "after hot rounds: hit ratio {:>5.1}%, {:>4} allocation-writes, {:>4} resident blocks",
                100.0 * s.hit_ratio(),
                s.allocation_writes,
                s.resident_blocks,
            );
        }
    }
    println!("hot-set hits in 80 reads: {hits}");
    println!(
        "\nThe node bypassed the entire cold scan (zero allocation-writes for\n\
         2,000 blocks) yet admitted the 8-block hot set after a handful of\n\
         misses — selective allocation at the storage-network layer."
    );

    client.quit()?;
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
