//! Ensemble-level caching over a synthetic multi-server trace.
//!
//! Run with: `cargo run --release --example ensemble_caching`
//!
//! Generates a small two-server ensemble trace with drifting hot sets,
//! then simulates the paper's main contenders over it and prints a
//! per-day capture table — a miniature of the paper's Figure 5.

use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{ideal_top_selections, simulate_many, SimConfig};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};
use sievestore_types::SieveError;

fn main() -> Result<(), SieveError> {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(2026).with_days(5))?;
    let scale = trace.config().scale.denominator();
    let cfg = SimConfig::paper_16gb(scale).with_capacity_blocks(16_384);

    let (selections, _, _) = ideal_top_selections(&trace, 0.01);
    let results = simulate_many(
        &trace,
        vec![
            PolicySpec::IdealTop1 { selections },
            PolicySpec::SieveStoreD { threshold: 10 },
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 16)),
            PolicySpec::Aod,
            PolicySpec::Wmna,
        ],
        &cfg,
    )?;

    println!(
        "{} servers, {} days, cache {} frames\n",
        trace.config().servers.len(),
        trace.days(),
        cfg.capacity_blocks
    );
    print!("{:<14}", "day");
    for r in &results {
        print!("{:>14}", r.policy);
    }
    println!("\n{}", "-".repeat(14 + results.len() * 14));
    for d in 0..trace.days() as usize {
        print!("{d:<14}");
        for r in &results {
            let m = r.days.get(d).copied().unwrap_or_default();
            print!("{:>13.1}%", 100.0 * m.captured_fraction());
        }
        println!();
    }
    print!("{:<14}", "alloc-writes");
    for r in &results {
        print!("{:>14}", r.total().total_allocation_writes());
    }
    println!();
    println!(
        "\nSieveStore-D shows 0% on day 0 (it needs one day of logs to bootstrap),\n\
         then tracks the ideal closely; the unsieved caches pay for every miss\n\
         with an allocation-write."
    );
    Ok(())
}
