//! Scaling out: hash-sharded SieveStore appliances (§7 forward-work).
//!
//! Run with: `cargo run --release --example sharded_scaling`
//!
//! When one appliance's SSD or network saturates, blocks can be hashed
//! across several independent appliances. Because a block's entire miss
//! history lands on one shard, sieving decisions are unchanged; capacity
//! and IOPS scale with the shard count. This example also shows the
//! adaptive threshold controller keeping SieveStore-D's selection inside
//! a cache budget.

use sievestore::tuning::{AdaptiveThreshold, ShardedSieveStore};
use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_trace::{EnsembleConfig, SyntheticTrace};
use sievestore_types::{Day, SieveError};

fn main() -> Result<(), SieveError> {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(7).with_days(3))?;

    for shards in [1usize, 2, 4] {
        let mut group = ShardedSieveStore::new(shards, 16_384 / shards, |_| {
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 14))
        })?;
        for d in 0..trace.days() {
            group.day_boundary(Day::new(d));
            for req in trace.day_requests(Day::new(d)) {
                for block in req.blocks() {
                    group.access(block.raw(), req.kind, req.timestamp);
                }
            }
        }
        let stats = group.stats();
        let loads = group.shard_loads();
        println!(
            "{shards} shard(s): hit ratio {:5.1}%  alloc-writes {:>6}  resident/shard {:?}",
            100.0 * stats.hit_ratio(),
            stats.allocation_writes,
            loads,
        );
    }

    // Adaptive thresholding: keep SieveStore-D's daily selection near a
    // 4k-block budget even as epoch volume swings.
    println!("\nadaptive SieveStore-D threshold (budget 4,096 blocks):");
    let mut controller = AdaptiveThreshold::new(10, 6, 20, 4_096)?;
    for (epoch, selected) in [12_000u64, 9_000, 6_500, 5_000, 3_800, 1_500, 900]
        .iter()
        .enumerate()
    {
        let t = controller.observe_epoch(*selected);
        println!("  epoch {epoch}: selected {selected:>6} blocks -> next threshold t={t}");
    }
    println!(
        "\nSharding preserves per-block sieving decisions exactly (same shard\n\
         sees every miss of a block), so hit ratios match the single-node\n\
         deployment while capacity and IOPS scale linearly."
    );
    Ok(())
}
