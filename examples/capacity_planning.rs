//! Capacity planning: how many SSDs does an ensemble cache need?
//!
//! Run with: `cargo run --release --example capacity_planning`
//!
//! Uses the analytical SSD model to answer the deployment questions the
//! paper's Figures 8–9 answer: per-minute drive occupancy, drives needed
//! at a coverage target, bandwidth headroom, and write-endurance
//! lifetime — for a sieved versus an unsieved cache.

use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{simulate_many, SimConfig};
use sievestore_ssd::{endurance_years, SsdSpec};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};
use sievestore_types::SieveError;

fn main() -> Result<(), SieveError> {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(99).with_days(4))?;
    let scale = trace.config().scale.denominator();
    let cfg = SimConfig::paper_16gb(scale).with_capacity_blocks(16_384);

    let results = simulate_many(
        &trace,
        vec![
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 16)),
            PolicySpec::Wmna,
        ],
        &cfg,
    )?;

    let ssd = SsdSpec::x25e();
    println!("device: {ssd}");
    println!(
        "implied random bandwidth: {:.0} MB/s reads, {:.1} MB/s writes\n",
        ssd.random_read_mbps(),
        ssd.random_write_mbps()
    );

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14} {:>16}",
        "policy", "drives@99%", "drives@99.9%", "drives@100%", "peak MB/s", "lifetime (yrs)"
    );
    for r in &results {
        let occ = &r.occupancy;
        let days = r.days.len().max(1) as f64;
        let lifetime = endurance_years(occ.spec(), occ.total_write_bytes() / days);
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>14.1} {:>16.0}",
            r.policy,
            occ.drives_for_coverage(0.99).max(1),
            occ.drives_for_coverage(0.999).max(1),
            occ.drives_for_coverage(1.0).max(1),
            occ.peak_bandwidth_mbps(),
            lifetime,
        );
    }
    println!(
        "\nSieving keeps the drive far below saturation (slow writes are the\n\
         scarce resource: {} write IOPS vs {} read IOPS). Note the peak-MB/s\n\
         column: the unsieved cache pushes far more write traffic for the\n\
         same workload; at the full 13-server ensemble's intensity that\n\
         difference becomes extra drives (see `experiments fig9`).",
        ssd.write_iops, ssd.read_iops
    );
    Ok(())
}
