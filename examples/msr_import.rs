//! Importing MSR-Cambridge-format traces and driving SieveStore with them.
//!
//! Run with: `cargo run --release --example msr_import [path/to/trace.csv]`
//!
//! Without an argument, a small embedded sample demonstrates the format.
//! With a path to a real MSR CSV (e.g. from the SNIA IOTTA repository),
//! the same pipeline runs on the genuine workload: parse, characterize
//! the skew, and compare a sieved against an unsieved cache.

use std::fs::File;

use sievestore::{PolicySpec, SieveStoreBuilder};
use sievestore_analysis::{popularity_cdf, BlockCounts};
use sievestore_sieve::TwoTierConfig;
use sievestore_trace::MsrReader;
use sievestore_types::{Request, SieveError};

/// A few synthetic rows in the MSR column layout, for the no-argument demo.
const SAMPLE: &str = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372004061629,usr,0,Write,7014609920,8192,11286
128166372005061629,usr,1,Read,1048576,4096,9120
128166372006061629,prxy,0,Read,524288,4096,3120
128166372007061629,prxy,0,Read,524288,4096,2950
128166372008061629,prxy,0,Read,524288,4096,2870
128166372009061629,src1,0,Write,89128960,65536,50210
128166372010061629,usr,0,Read,7014609920,24576,30180
128166372011061629,prxy,0,Read,524288,4096,2410
128166372012061629,prxy,0,Read,524288,4096,2395
";

fn load(path: Option<&str>) -> Result<(Vec<Request>, Vec<String>), SieveError> {
    match path {
        Some(p) => {
            let mut reader = MsrReader::new(File::open(p)?);
            let requests: Result<Vec<_>, _> = (&mut reader).collect();
            Ok((requests?, reader.servers().to_vec()))
        }
        None => {
            let mut reader = MsrReader::new(SAMPLE.as_bytes());
            let requests: Result<Vec<_>, _> = (&mut reader).collect();
            Ok((requests?, reader.servers().to_vec()))
        }
    }
}

fn main() -> Result<(), SieveError> {
    let arg = std::env::args().nth(1);
    let (requests, servers) = load(arg.as_deref())?;
    println!(
        "parsed {} requests from {} host(s): {:?}",
        requests.len(),
        servers.len(),
        servers
    );

    let counts = BlockCounts::from_requests(requests.iter());
    let cdf = popularity_cdf(&counts, 100.min(counts.unique_blocks().max(1)));
    println!(
        "{} unique blocks, {} block accesses, top-1% share {:.1}%",
        counts.unique_blocks(),
        counts.total_accesses(),
        100.0 * cdf.top1_share(),
    );

    // Drive a sieved and an unsieved cache with the imported stream.
    let capacity = (counts.unique_blocks() / 8).max(64);
    let mut sieved = SieveStoreBuilder::new()
        .capacity_blocks(capacity)
        .policy(PolicySpec::SieveStoreC(
            TwoTierConfig::paper_default()
                .with_imct_entries(1 << 14)
                .with_thresholds(2, 1), // short demo streams need a light sieve
        ))
        .build()?;
    let mut unsieved = SieveStoreBuilder::new()
        .capacity_blocks(capacity)
        .policy(PolicySpec::Aod)
        .build()?;
    for req in &requests {
        for block in req.blocks() {
            sieved.access(block.raw(), req.kind, req.timestamp);
            unsieved.access(block.raw(), req.kind, req.timestamp);
        }
    }
    for store in [&sieved, &unsieved] {
        let s = store.stats();
        println!(
            "{:<14} hits {:>8}  allocation-writes {:>8}",
            store.policy_name(),
            s.hits(),
            s.allocation_writes,
        );
    }
    if arg.is_none() {
        println!("\n(pass a path to a real MSR-Cambridge CSV to run on a genuine trace)");
    }
    Ok(())
}
