//! Differential tests for the streaming replay pipeline.
//!
//! Every engine entry point now consumes the generate-as-you-go trace
//! stream instead of materializing `day_requests`; these tests pin that
//! nothing moved in the transition:
//!
//! * the stream's request sequence is byte-identical to the materialized
//!   per-day sort, for every chunk size and in spill-to-disk mode, and
//!   matches a committed golden digest;
//! * replay figures (per-day metrics *and* day-snapshot JSONL bytes) are
//!   invariant under the stream shape, the counting backend (in-memory
//!   vs spill), the shard count (1, 2, 4), the eviction policy (LRU and
//!   SIEVE) and the policy family (discrete and continuous);
//! * the work-stealing scheduler actually steals under forced imbalance
//!   and still reproduces the sequential figures exactly.

use std::path::PathBuf;
use std::time::Duration;

use sievestore::PolicySpec;
use sievestore_extsort::CountingConfig;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    simulate, simulate_sharded, simulate_sharded_with_stall, simulate_with_snapshots,
    EvictionPolicy, SimConfig, SnapshotLog,
};
use sievestore_trace::{EnsembleConfig, StreamMsg, SyntheticTrace, TraceStreamConfig};
use sievestore_types::{mix64, Day, Request, RequestKind};

/// Large enough that no policy under the tiny traces ever evicts, so
/// continuous policies are also shard-count invariant (see
/// `tests/sharded_replay.rs` for the regime argument).
const AMPLE_CAPACITY: usize = 1 << 20;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Order-sensitive digest step: every field of the request feeds the
/// accumulator, so any reorder, drop, duplicate or field corruption in a
/// sequence changes the folded value.
fn fold_request(acc: u64, r: &Request) -> u64 {
    let mut acc = mix64(acc ^ r.timestamp.as_u64());
    acc = mix64(acc ^ u64::from(r.start.server.index()));
    acc = mix64(acc ^ u64::from(r.start.volume.index()));
    acc = mix64(acc ^ r.start.block);
    acc = mix64(acc ^ u64::from(r.len_blocks));
    acc = mix64(acc ^ matches!(r.kind, RequestKind::Write) as u64);
    mix64(acc ^ r.response_time.as_u64())
}

fn digest<'a>(requests: impl IntoIterator<Item = &'a Request>) -> u64 {
    requests.into_iter().fold(0, fold_request)
}

/// Drains a stream into (day-marker sequence, request digest).
fn drain(trace: &SyntheticTrace, config: TraceStreamConfig) -> (Vec<Day>, u64) {
    let mut stream = trace.stream(config);
    let mut days = Vec::new();
    let mut acc = 0u64;
    while let Some(msg) = stream.next_msg() {
        match msg {
            StreamMsg::StartDay(day) => days.push(day),
            StreamMsg::Chunk(chunk) => {
                acc = chunk.iter().fold(acc, fold_request);
                stream.recycle(chunk);
            }
            StreamMsg::Failed(e) => panic!("stream failed: {e}"),
        }
    }
    (days, acc)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sievestore-streaming-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_trace(seed: u64) -> SyntheticTrace {
    SyntheticTrace::new(EnsembleConfig::tiny(seed)).expect("tiny trace")
}

fn cfg(trace: &SyntheticTrace) -> SimConfig {
    SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(AMPLE_CAPACITY)
}

/// The stream is the materialized per-day sort, chunk boundaries and
/// backing store notwithstanding — and both match a pinned golden digest,
/// so a bug that shifts generator *and* materializer together still trips.
#[test]
fn stream_matches_materialized_and_golden_digest() {
    let trace = tiny_trace(42);
    let expected_days: Vec<Day> = (0..trace.days()).map(Day::new).collect();
    let all: Vec<Request> = expected_days
        .iter()
        .flat_map(|&d| trace.day_requests(d))
        .collect();
    let materialized = digest(&all);

    let shapes: Vec<(&str, TraceStreamConfig)> = vec![
        ("default", TraceStreamConfig::default()),
        (
            "chunk-7",
            TraceStreamConfig::default()
                .with_chunk_requests(7)
                .with_depth(1),
        ),
        (
            "chunk-4096",
            TraceStreamConfig::default().with_chunk_requests(4096),
        ),
        (
            "spill",
            TraceStreamConfig::default()
                .with_chunk_requests(33)
                .with_spill_dir(scratch_dir("golden").join("trace")),
        ),
    ];
    for (name, shape) in shapes {
        let (days, got) = drain(&trace, shape);
        assert_eq!(days, expected_days, "{name}: day markers diverged");
        assert_eq!(got, materialized, "{name}: request sequence diverged");
    }

    // Golden digest for EnsembleConfig::tiny(42). If this moves, the
    // generator's output changed for everyone — including the committed
    // CI baselines — and the change must be deliberate.
    assert_eq!(materialized, GOLDEN_TINY_42);
    std::fs::remove_dir_all(scratch_dir("golden")).ok();
}

/// Pinned by `stream_matches_materialized_and_golden_digest`.
const GOLDEN_TINY_42: u64 = 0xD915_971A_5A97_99D8;

/// Replay figures are invariant under the stream shape and the counting
/// backend: per-day metrics and the exported day-snapshot bytes must not
/// know how the requests were delivered or where epoch counts lived.
#[test]
fn replay_is_invariant_under_stream_shape_and_counting_backend() {
    let trace = tiny_trace(7);
    let base = cfg(&trace);
    let spec = PolicySpec::SieveStoreD { threshold: 10 };
    let (reference, reference_log) =
        simulate_with_snapshots(&trace, spec.clone(), &base).expect("reference run");

    let spill_root = scratch_dir("shape");
    let variants: Vec<(&str, SimConfig)> = vec![
        (
            "tiny-chunks",
            base.clone().with_trace_stream(
                TraceStreamConfig::default()
                    .with_chunk_requests(13)
                    .with_depth(1),
            ),
        ),
        (
            "spilled-trace",
            base.clone().with_trace_stream(
                TraceStreamConfig::default()
                    .with_chunk_requests(257)
                    .with_spill_dir(spill_root.join("trace")),
            ),
        ),
        (
            "spilled-counting",
            base.clone()
                .with_counting(CountingConfig::spill(spill_root.join("counts"))),
        ),
        (
            "spilled-everything",
            base.clone()
                .with_trace_stream(
                    TraceStreamConfig::default()
                        .with_chunk_requests(101)
                        .with_spill_dir(spill_root.join("trace2")),
                )
                .with_counting(CountingConfig::spill(spill_root.join("counts2"))),
        ),
    ];
    for (name, variant) in variants {
        let (result, log) =
            simulate_with_snapshots(&trace, spec.clone(), &variant).expect("variant run");
        assert_eq!(reference.days, result.days, "{name}: day metrics diverged");
        assert_eq!(
            reference_log.to_jsonl(),
            log.to_jsonl(),
            "{name}: snapshot bytes diverged"
        );
    }
    std::fs::remove_dir_all(&spill_root).ok();
}

/// The satellite matrix: discrete and continuous policies, LRU and SIEVE
/// eviction, shard counts 1/2/4 — all must reproduce the sequential
/// metrics and day-snapshot bytes exactly under the streaming pipeline.
#[test]
fn sharded_streaming_matches_sequential_across_policies_and_eviction() {
    let trace = tiny_trace(11);
    let specs: Vec<PolicySpec> = vec![
        PolicySpec::SieveStoreD { threshold: 10 },
        PolicySpec::RandSieveBlkD {
            fraction: 0.01,
            seed: 0xB10C,
        },
        PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 14)),
        PolicySpec::Aod,
    ];
    for eviction in [EvictionPolicy::Lru, EvictionPolicy::Sieve] {
        let base = cfg(&trace).with_eviction(eviction);
        for spec in &specs {
            let sequential = simulate(&trace, spec.clone(), &base).expect("sequential");
            let sequential_jsonl = SnapshotLog::from_result(&sequential).to_jsonl();
            for shards in SHARD_COUNTS {
                let (sharded, stats) =
                    simulate_sharded(&trace, spec.clone(), &base, shards).expect("sharded");
                assert_eq!(
                    sequential.days, sharded.days,
                    "{spec:?} under {eviction} diverged at {shards} shards"
                );
                assert_eq!(
                    sequential_jsonl,
                    SnapshotLog::from_result(&sharded).to_jsonl(),
                    "{spec:?} under {eviction}: snapshot bytes diverged at {shards} shards"
                );
                assert_eq!(
                    stats.total_blocks(),
                    sequential.total().accesses(),
                    "{spec:?} under {eviction}: routing dropped blocks at {shards} shards"
                );
            }
        }
    }
}

/// Forced imbalance: one worker stalls before each of its own messages,
/// so its queue backs up and the other workers must steal. The metrics
/// and snapshot bytes still match the sequential replay exactly — the
/// safety argument is that stealing changes *who* runs a shard's next
/// message, never the order — and the stats prove stealing happened.
#[test]
fn work_stealing_rebalances_without_changing_metrics() {
    let trace = tiny_trace(23);
    let base = cfg(&trace);
    let spec = PolicySpec::SieveStoreD { threshold: 10 };
    let sequential = simulate(&trace, spec.clone(), &base).expect("sequential");
    let sequential_jsonl = SnapshotLog::from_result(&sequential).to_jsonl();

    let (stalled, stats) =
        simulate_sharded_with_stall(&trace, spec, &base, 4, 0, Duration::from_millis(2))
            .expect("stalled sharded run");
    assert_eq!(
        sequential.days, stalled.days,
        "work-stealing changed the replay metrics"
    );
    assert_eq!(
        sequential_jsonl,
        SnapshotLog::from_result(&stalled).to_jsonl(),
        "work-stealing changed the snapshot bytes"
    );
    assert!(
        stats.steals > 0,
        "stalling a worker for 2ms per message must force steals (got {stats:?})"
    );
    assert_eq!(
        stats.total_blocks(),
        sequential.total().accesses(),
        "stealing dropped or duplicated blocks"
    );
}
