//! Property suite pinning the observability layer's algebra.
//!
//! The exporter's central claim is that snapshots are *mergeable*:
//! per-shard metric snapshots combine into the same totals in any order
//! and any grouping, exactly like the simulator's `DayMetrics`. These
//! properties pin that algebra (commutativity, associativity, identity),
//! the log-bucketing round trip behind it, the determinism of the JSON
//! serialization, and — end to end — that `Sharded(N)` replays export
//! byte-identical day-boundary snapshot logs to the sequential engine for
//! discrete policies.

use std::sync::Mutex;

use proptest::prelude::*;
use sievestore::PolicySpec;
use sievestore_sim::{simulate_with_snapshots, ReplayMode, SimConfig};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};
use sievestore_types::obs::{
    self, bucket_floor, bucket_of, CounterId, GaugeId, HistId, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, HIST_BUCKETS,
};

/// Builds a snapshot by recording `values` into a fresh histogram.
fn hist_from(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// `a.merge(b)` without mutating either operand.
fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = *a;
    out.merge(b);
    out
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..40)
}

/// Arbitrary registry snapshots: every counter populated, both gauges,
/// and one histogram chosen dependently via `prop_flat_map`.
fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::vec(0u64..1 << 30, CounterId::ALL.len()),
        (-1_000i64..1_000, -1_000i64..1_000),
        (0usize..HistId::ALL.len())
            .prop_flat_map(|idx| (Just(idx), proptest::collection::vec(any::<u64>(), 0..32))),
    )
        .prop_map(|(counters, (frames, tracked), (hist_idx, hist_values))| {
            let mut snap = MetricsSnapshot::empty();
            for (id, v) in CounterId::ALL.into_iter().zip(counters) {
                snap.set_counter(id, v);
            }
            snap.set_gauge(GaugeId::CacheResidentFrames, frames);
            snap.set_gauge(GaugeId::MctTrackedBlocks, tracked);
            snap.histogram_mut(HistId::ALL[hist_idx])
                .merge(&hist_from(&hist_values));
            snap
        })
}

fn merged_snap(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// `bucket_of`/`bucket_floor` round trip: every value lands in the
    /// bucket whose floor is at most the value, and strictly below the
    /// next bucket's floor.
    #[test]
    fn bucketing_brackets_every_value(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        prop_assert!(bucket_floor(b) <= v);
        if b + 1 < HIST_BUCKETS {
            prop_assert!(v < bucket_floor(b + 1), "{v} above bucket {b}");
        }
    }

    /// Histogram merge is commutative and counts are additive.
    #[test]
    fn hist_merge_commutes(a in values(), b in values()) {
        let (ha, hb) = (hist_from(&a), hist_from(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
        prop_assert_eq!(merged(&ha, &hb).count(), ha.count() + hb.count());
    }

    /// Histogram merge is associative, and merging per-part snapshots
    /// equals recording the concatenated stream into one histogram.
    #[test]
    fn hist_merge_associates_and_matches_concat(
        a in values(),
        b in values(),
        c in values(),
    ) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        prop_assert_eq!(merged(&merged(&ha, &hb), &hc), merged(&ha, &merged(&hb, &hc)));
        let concat: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(merged(&merged(&ha, &hb), &hc), hist_from(&concat));
    }

    /// The empty snapshot is the merge identity.
    #[test]
    fn hist_empty_is_identity(a in values()) {
        let ha = hist_from(&a);
        prop_assert_eq!(merged(&ha, &HistogramSnapshot::empty()), ha);
        prop_assert_eq!(merged(&HistogramSnapshot::empty(), &ha), ha);
    }

    /// Extreme quantiles land exactly on the lowest and highest
    /// populated buckets.
    #[test]
    fn quantile_floor_spans_populated_buckets(
        vs in values().prop_filter("needs samples", |v| !v.is_empty()),
    ) {
        let h = hist_from(&vs);
        let lo = h.quantile_floor(0.0).expect("non-empty");
        let hi = h.quantile_floor(1.0).expect("non-empty");
        prop_assert!(lo <= hi);
        let min = *vs.iter().min().expect("non-empty");
        let max = *vs.iter().max().expect("non-empty");
        prop_assert_eq!(lo, bucket_floor(bucket_of(min)));
        prop_assert_eq!(hi, bucket_floor(bucket_of(max)));
    }

    /// Registry-snapshot merge is commutative and associative, and equal
    /// snapshots serialize to identical bytes regardless of merge order.
    #[test]
    fn snapshot_merge_commutes_and_associates(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        prop_assert_eq!(merged_snap(&a, &b), merged_snap(&b, &a));
        prop_assert_eq!(
            merged_snap(&merged_snap(&a, &b), &c),
            merged_snap(&a, &merged_snap(&b, &c))
        );
        prop_assert_eq!(
            merged_snap(&a, &b).to_json_line(),
            merged_snap(&b, &a).to_json_line()
        );
    }

    /// The empty registry snapshot is the merge identity.
    #[test]
    fn snapshot_empty_is_identity(a in snapshot_strategy()) {
        prop_assert_eq!(merged_snap(&a, &MetricsSnapshot::empty()), a.clone());
        prop_assert_eq!(merged_snap(&MetricsSnapshot::empty(), &a), a);
        prop_assert!(MetricsSnapshot::empty().is_empty());
    }

    /// A private registry's snapshot reflects exactly what was recorded,
    /// and `reset` returns it to empty.
    #[test]
    fn registry_snapshot_roundtrip(
        n in 1u64..1_000,
        delta in -500i64..500,
        vs in values(),
    ) {
        let reg = Registry::new();
        reg.add(CounterId::ReplayEventsRouted, n);
        reg.adjust_gauge(GaugeId::MctTrackedBlocks, delta);
        for &v in &vs {
            reg.record(HistId::ReplayChannelWaitNanos, v);
        }
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter(CounterId::ReplayEventsRouted), n);
        prop_assert_eq!(snap.gauge(GaugeId::MctTrackedBlocks), delta);
        prop_assert_eq!(snap.histogram(HistId::ReplayChannelWaitNanos), &hist_from(&vs));
        reg.reset();
        prop_assert!(reg.snapshot().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// End to end: a `Sharded(N)` replay of a discrete policy exports a
    /// day-boundary snapshot log byte-identical to the sequential
    /// engine's online emission — totals, per-day lines, header, all of
    /// it.
    #[test]
    fn sharded_day_snapshots_match_sequential(
        trace_seed in 0u64..1_000_000,
        shards in proptest::sample::select(vec![2usize, 4, 8]),
        threshold in 2u64..12,
    ) {
        let trace = SyntheticTrace::new(EnsembleConfig::tiny(trace_seed)).unwrap();
        let spec = PolicySpec::SieveStoreD { threshold };
        let base = SimConfig::paper_16gb(trace.config().scale.denominator())
            .with_capacity_blocks(4_096);
        let (_, seq_log) =
            simulate_with_snapshots(&trace, spec.clone(), &base).expect("sequential run");
        let sharded_cfg = base.with_replay(ReplayMode::Sharded(shards));
        let (_, sharded_log) =
            simulate_with_snapshots(&trace, spec, &sharded_cfg).expect("sharded run");
        prop_assert_eq!(seq_log.to_jsonl(), sharded_log.to_jsonl());
        prop_assert_eq!(
            seq_log.days.last().map(|d| d.cumulative),
            sharded_log.days.last().map(|d| d.cumulative)
        );
    }
}

/// Serializes the tests that toggle the process-global runtime flag; the
/// node-only metric ids they probe are untouched by every other test in
/// this binary, so concurrent simulation tests cannot perturb them.
static GLOBAL_OBS: Mutex<()> = Mutex::new(());

#[test]
fn disabled_runtime_records_nothing_globally() {
    let _guard = GLOBAL_OBS.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(false);
    let before = obs::global().snapshot();
    obs::count(CounterId::ClientRetries, 5);
    obs::observe(HistId::NodeReadNanos, 123);
    let after = obs::global().snapshot();
    assert_eq!(
        before.counter(CounterId::ClientRetries),
        after.counter(CounterId::ClientRetries)
    );
    assert_eq!(
        before.histogram(HistId::NodeReadNanos),
        after.histogram(HistId::NodeReadNanos)
    );
}

#[test]
fn enabled_runtime_records_exact_deltas() {
    let _guard = GLOBAL_OBS.lock().unwrap_or_else(|p| p.into_inner());
    let before = obs::global().snapshot();
    obs::set_enabled(true);
    obs::count(CounterId::ClientRetries, 5);
    obs::observe(HistId::NodeReadNanos, 123);
    obs::set_enabled(false);
    let after = obs::global().snapshot();
    assert_eq!(
        after.counter(CounterId::ClientRetries),
        before.counter(CounterId::ClientRetries) + 5
    );
    assert_eq!(
        after.histogram(HistId::NodeReadNanos).count(),
        before.histogram(HistId::NodeReadNanos).count() + 1
    );
}
