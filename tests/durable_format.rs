//! Golden-bytes tests pinning the on-disk durable format.
//!
//! These constants are a compatibility contract: segment and journal
//! files written by one build must be readable by the next. Any change
//! here is a format break and must bump `FORMAT_VERSION` plus add a
//! migration path — it must never be silent.

use sievestore::PolicySpec;
use sievestore_node::{crc64, DataCache, DurableMediaSet, MemBacking, WritePolicy};
use sievestore_types::Micros;

const SEGMENT_MAGIC: &[u8; 8] = b"SVSTSEG1";
const JOURNAL_MAGIC: &[u8; 8] = b"SVSTJNL1";
const FORMAT_VERSION: u16 = 1;
const FILE_HEADER_LEN: usize = 24;
const FRAME_HEADER_LEN: usize = 32;
const FRAME_RECORD_LEN: usize = 544;
const JOURNAL_RECORD_LEN: usize = 32;

/// CRC-64/XZ check value for the standard nine-digit test vector. Pins
/// the polynomial, reflection, and init/xorout parameters all at once.
#[test]
fn crc64_is_crc64_xz() {
    assert_eq!(crc64(&[b"123456789"]), 0x995D_C9BB_DF19_39FA);
    // Multi-chunk hashing must equal whole-buffer hashing.
    assert_eq!(crc64(&[b"1234", b"56789"]), crc64(&[b"123456789"]));
    assert_eq!(crc64(&[]), crc64(&[b""]));
}

/// Builds a durable cache on in-memory media, writes one known frame,
/// and returns the raw bytes of all three devices.
fn golden_media() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let media = DurableMediaSet::in_memory();
    let (cache, _) = DataCache::new_durable(MemBacking::new(), PolicySpec::Aod, 4, media)
        .expect("fresh media formats cleanly");
    let mut cache = cache.with_write_policy(WritePolicy::WriteBack);
    let key = 0x1122_3344_5566_7788u64;
    cache
        .write(key, &[0xAB; 512], Micros::from_secs(1))
        .unwrap();
    cache
        .durable()
        .expect("durable store attached")
        .clone_media_bytes()
        .unwrap()
}

#[test]
fn segment_file_header_is_pinned() {
    let (seg, _, _) = golden_media();
    assert!(seg.len() >= FILE_HEADER_LEN);
    assert_eq!(&seg[0..8], SEGMENT_MAGIC, "segment magic");
    assert_eq!(
        u16::from_le_bytes([seg[8], seg[9]]),
        FORMAT_VERSION,
        "format version, little-endian at offset 8"
    );
}

#[test]
fn journal_file_header_is_pinned() {
    let (_, ja, jb) = golden_media();
    // Fresh format truncates the inactive journal to zero length; only
    // the active journal carries a header until the first compaction.
    let active = [&ja, &jb]
        .into_iter()
        .find(|j| !j.is_empty())
        .expect("one journal is active");
    assert!(active.len() >= FILE_HEADER_LEN);
    assert_eq!(&active[0..8], JOURNAL_MAGIC, "journal magic");
    assert_eq!(
        u16::from_le_bytes([active[8], active[9]]),
        FORMAT_VERSION,
        "format version, little-endian at offset 8"
    );
}

#[test]
fn frame_record_layout_is_pinned() {
    let (seg, _, _) = golden_media();
    let key = 0x1122_3344_5566_7788u64;
    let key_le: [u8; 8] = [0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11];
    assert_eq!(key.to_le_bytes(), key_le, "keys are little-endian");

    // Exactly one occupied slot; find it by its key bytes and verify
    // the full record layout around it.
    let slots = (seg.len() - FILE_HEADER_LEN) / FRAME_RECORD_LEN;
    let mut found = None;
    for slot in 0..slots {
        let base = FILE_HEADER_LEN + slot * FRAME_RECORD_LEN;
        if seg[base..base + 8] == key_le {
            assert!(found.is_none(), "key appears in exactly one slot");
            found = Some(base);
        }
    }
    let base = found.expect("written key present in the segment");

    // Payload is stored verbatim after the 32-byte frame header.
    let payload = &seg[base + FRAME_HEADER_LEN..base + FRAME_RECORD_LEN];
    assert_eq!(payload.len(), 512);
    assert!(
        payload.iter().all(|&b| b == 0xAB),
        "payload stored verbatim"
    );

    // The record checksum lives at bytes 24..32 of the record, is
    // little-endian CRC-64/XZ, and covers header-before-crc + payload.
    let stored = u64::from_le_bytes(seg[base + 24..base + 32].try_into().unwrap());
    let computed = crc64(&[&seg[base..base + 24], payload]);
    assert_eq!(stored, computed, "frame CRC covers header + payload");
}

#[test]
fn journal_record_layout_is_pinned() {
    let (_, ja, jb) = golden_media();
    // Exactly one of the two journals is active for generation 1; the
    // write above appended at least one record to it.
    let active = [&ja, &jb]
        .into_iter()
        .find(|j| j.len() > FILE_HEADER_LEN)
        .expect("one journal holds records");
    let body = &active[FILE_HEADER_LEN..];
    assert_eq!(
        body.len() % JOURNAL_RECORD_LEN,
        0,
        "journal body is whole 32-byte records"
    );
    let record = &body[..JOURNAL_RECORD_LEN];
    let stored = u64::from_le_bytes(record[24..32].try_into().unwrap());
    let computed = crc64(&[&record[..24]]);
    assert_eq!(
        stored, computed,
        "journal CRC at bytes 24..32 of the record"
    );
}

#[test]
fn record_sizes_are_pinned() {
    // Writing one more frame grows the active journal by exactly one
    // record; the segment file is slot-granular at 544 bytes.
    let media = DurableMediaSet::in_memory();
    let (cache, _) = DataCache::new_durable(MemBacking::new(), PolicySpec::Aod, 4, media).unwrap();
    let mut cache = cache.with_write_policy(WritePolicy::WriteBack);
    cache.write(1, &[1u8; 512], Micros::from_secs(1)).unwrap();
    let before = cache.durable().unwrap().clone_media_bytes().unwrap();
    cache.write(2, &[2u8; 512], Micros::from_secs(2)).unwrap();
    let after = cache.durable().unwrap().clone_media_bytes().unwrap();

    let journal_growth =
        (after.1.len() + after.2.len()) as i64 - (before.1.len() + before.2.len()) as i64;
    assert_eq!(
        journal_growth, JOURNAL_RECORD_LEN as i64,
        "one journal record per allocation"
    );
    assert_eq!(
        (before.0.len() - FILE_HEADER_LEN) % FRAME_RECORD_LEN,
        0,
        "segment is whole 544-byte slots"
    );
}
