//! Repro: a recovered dirty frame the policy did not re-admit gets
//! re-journaled as AllocClean on a read-allocation, so a subsequent
//! unclean crash loses the acked write-back data.

use sievestore::PolicySpec;
use sievestore_node::durable::{DurableMediaSet, DurableStore, MemMedia};
use sievestore_node::{DataCache, MemBacking, WritePolicy};
use sievestore_types::Micros;

fn block(fill: u8) -> [u8; 512] {
    [fill; 512]
}

fn media_from(cache: &DataCache<MemBacking>) -> DurableMediaSet {
    let (f, a, b) = cache.durable().unwrap().clone_media_bytes().unwrap();
    DurableMediaSet {
        frames: Box::new(MemMedia::from_bytes(f)),
        journal_a: Box::new(MemMedia::from_bytes(a)),
        journal_b: Box::new(MemMedia::from_bytes(b)),
    }
}

#[test]
fn read_alloc_must_not_relabel_recovered_dirty_frame_as_clean() {
    // Incarnation 1: capacity 8, write-back, 6 dirty keys, crash (no
    // shutdown marker, no flush).
    let (c, _) = DataCache::new_durable(
        MemBacking::new(),
        PolicySpec::Aod,
        8,
        DurableMediaSet::in_memory(),
    )
    .unwrap();
    let mut c = c.with_write_policy(WritePolicy::WriteBack);
    for k in 0..6u64 {
        c.write(k, &block(k as u8 + 1), Micros::from_secs(k))
            .unwrap();
    }
    assert_eq!(c.dirty_blocks(), 6);

    // Incarnation 2: recover into a smaller cache (capacity 2) so the
    // policy cannot re-admit every dirty frame.
    let media = media_from(&c);
    let (c2, report) =
        DataCache::new_durable(MemBacking::new(), PolicySpec::Aod, 2, media).unwrap();
    let mut c2 = c2.with_write_policy(WritePolicy::WriteBack);
    assert_eq!(report.recovered, 6, "all dirty frames kept after crash");
    assert_eq!(c2.dirty_blocks(), 6);

    // Read a non-readmitted dirty key: served correctly from the dirty
    // frame...
    let (data, _) = c2.read(0, Micros::from_secs(100)).unwrap();
    assert_eq!(data, block(1));
    assert!(c2.dirty_blocks() >= 1, "key 0 still dirty in memory");

    // ...but crash again before any flush. The backing store has never
    // seen key 0's data, so recovery must keep it dirty.
    let media = media_from(&c2);
    let recovery = DurableStore::open(media, 2).unwrap();
    let k0 = recovery.frames.iter().find(|f| f.key == 0);
    match k0 {
        Some(f) => assert!(
            f.dirty,
            "key 0 recovered but relabeled clean: acked write-back data would be dropped"
        ),
        None => panic!(
            "key 0's acked write-back data lost after crash (dropped_clean={}, lost_dirty={})",
            recovery.report.dropped_clean, recovery.report.lost_dirty
        ),
    }
}
