//! Calibration tests: the synthetic 13-server ensemble must reproduce the
//! trace statistics the paper's design observations (O1, O2) rest on.
//!
//! These run at a coarse scale (fast) — the generator's per-block access
//! counts are scale-invariant by construction, so the shape assertions
//! hold at any scale.

use sievestore_analysis::{popularity_cdf, BlockCounts};
use sievestore_trace::{EnsembleConfig, Scale, SyntheticTrace};
use sievestore_types::Day;

fn msr_like_coarse() -> SyntheticTrace {
    let cfg = EnsembleConfig::msr_like().with_scale(Scale::new(2048).expect("nonzero"));
    SyntheticTrace::new(cfg).expect("default ensemble validates")
}

fn day_counts(trace: &SyntheticTrace, day: u16) -> BlockCounts {
    BlockCounts::from_requests(trace.day_requests(Day::new(day)).iter())
}

#[test]
fn o1_popularity_skew_holds_each_day() {
    let trace = msr_like_coarse();
    for d in 0..trace.days() {
        let counts = day_counts(&trace, d);
        let cdf = popularity_cdf(&counts, 1000);
        let top1 = cdf.top1_share();
        // Paper: the top 1% of blocks take 14-53% of accesses.
        assert!(
            (0.14..=0.60).contains(&top1),
            "day {d}: top-1% share {top1}"
        );
        // Paper: below the 50th percentile blocks are never reused.
        let single = counts.fraction_with_at_most(1);
        assert!(
            (0.45..=0.80).contains(&single),
            "day {d}: single-touch fraction {single}"
        );
        if d == 0 {
            // The partial first calendar day is the paper's own outlier:
            // very few blocks accumulate >= 10 accesses in 7 hours.
            let ge10 = 1.0 - counts.fraction_with_at_most(9);
            assert!(ge10 < 0.01, "day 0: >=10-access fraction {ge10}");
            continue;
        }
        // Paper: 99% of blocks see 10 or fewer accesses.
        let le10 = counts.fraction_with_at_most(10);
        assert!(le10 >= 0.95, "day {d}: <=10-access fraction {le10}");
        // Paper: the least popular 97% see 4 or fewer.
        let le4 = counts.fraction_with_at_most(4);
        assert!(le4 >= 0.93, "day {d}: <=4-access fraction {le4}");
    }
}

#[test]
fn o1_hot_head_is_steep() {
    let trace = msr_like_coarse();
    let counts = day_counts(&trace, 2);
    let sorted = counts.sorted_desc();
    // The hottest blocks must dwarf the 1%-boundary blocks (paper: >1000
    // vs <10 per day at full scale; ratios survive scaling).
    let hot_head = sorted[..10.min(sorted.len())]
        .iter()
        .map(|&c| c as f64)
        .sum::<f64>()
        / 10.0;
    let boundary = sorted[sorted.len() / 100];
    assert!(
        hot_head > 20.0 * boundary as f64,
        "head {hot_head} vs 1%-boundary {boundary}"
    );
}

#[test]
fn o2_skew_varies_across_servers() {
    let trace = msr_like_coarse();
    let day = Day::new(1);
    let share = |key: &str| {
        let idx = trace
            .config()
            .servers
            .iter()
            .position(|s| s.key == key)
            .expect("server exists");
        let counts = BlockCounts::from_requests(trace.server_day(idx, day).iter());
        popularity_cdf(&counts, 500).top1_share()
    };
    let prxy = share("Prxy");
    let src1 = share("Src1");
    assert!(prxy > 0.6, "Prxy should be heavily skewed, got {prxy}");
    assert!(src1 < 0.3, "Src1 should be near-uniform, got {src1}");
}

#[test]
fn o2_hot_sets_drift_but_consecutive_days_overlap() {
    let trace = msr_like_coarse();
    let top = |d: u16| day_counts(&trace, d).top_fraction(0.01).0;
    let overlap = |a: &[u64], b: &[u64]| sievestore_analysis::containment_overlap(a, b);
    let d1 = top(1);
    let d2 = top(2);
    let d7 = top(7);
    let near = overlap(&d1, &d2);
    let far = overlap(&d1, &d7);
    // Meaningful overlap between consecutive days (SieveStore-D's premise)
    // but clearly below identity (the hot set is dynamic).
    assert!(near > 0.15, "consecutive-day overlap {near}");
    assert!(near < 0.98, "hot sets should drift, overlap {near}");
    // Distant days diverge relative to consecutive days.
    assert!(far <= near + 0.05, "far {far} vs near {near}");
}

#[test]
fn daily_volume_tracks_the_paper_band() {
    // Paper: 1.5-2.5 TB of daily block accesses ensemble-wide (intro),
    // with day 1 (partial) the low outlier.
    let trace = msr_like_coarse();
    let scale = trace.config().scale.denominator() as f64;
    let mut daily_gb = Vec::new();
    for d in 0..trace.days() {
        let blocks: u64 = trace
            .day_requests(Day::new(d))
            .iter()
            .map(|r| r.len_blocks as u64)
            .sum();
        daily_gb.push(blocks as f64 * 512.0 * scale / (1u64 << 30) as f64);
    }
    let full_days = &daily_gb[1..];
    let mean = full_days.iter().sum::<f64>() / full_days.len() as f64;
    assert!(
        (1100.0..=2300.0).contains(&mean),
        "mean full-day volume {mean} GB"
    );
    for (d, gb) in daily_gb.iter().enumerate() {
        assert!(
            (300.0..=3000.0).contains(gb),
            "day {d} volume {gb} GB outside plausible band"
        );
    }
    // The partial first day is the low outlier.
    let min = daily_gb.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(
        daily_gb[0], min,
        "day 0 should be the minimum: {daily_gb:?}"
    );
}

#[test]
fn read_write_mix_is_roughly_three_to_one() {
    let trace = msr_like_coarse();
    let reqs = trace.day_requests(Day::new(1));
    let read_blocks: u64 = reqs
        .iter()
        .filter(|r| r.kind.is_read())
        .map(|r| r.len_blocks as u64)
        .sum();
    let total_blocks: u64 = reqs.iter().map(|r| r.len_blocks as u64).sum();
    let frac = read_blocks as f64 / total_blocks as f64;
    assert!((0.6..=0.9).contains(&frac), "read fraction {frac}");
}
