//! Crash-consistency property suite for the durable cache tier.
//!
//! Every schedule runs a deterministic workload against a
//! [`DataCache`] whose durable media is a set of [`CrashPointMedia`]
//! devices sharing one crash clock, cuts power at a chosen media
//! mutation step (optionally tearing the in-flight write and rotting
//! surviving bits), reboots from the surviving bytes and asserts the
//! three crash-consistency invariants:
//!
//! 1. **No corrupt frame is ever served** — every byte returned, before
//!    or after the crash, is a value some acknowledged or in-flight
//!    write produced (or the backing store's zero block); never torn or
//!    rotted garbage.
//! 2. **Write-through data is never lost** — an acknowledged
//!    write-through write is readable after restart.
//! 3. **Write-back dirty data acked after a journaled dirty record
//!    survives restart** — an acknowledged write-back write is readable
//!    after restart with exactly the acknowledged payload.
//!
//! The schedule count defaults to 250 and follows the `CRASH_SCHEDULES`
//! environment variable (CI pins it).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use sievestore::PolicySpec;
use sievestore_node::{
    BackingStore, Block, CrashHandle, CrashPlan, CrashPointMedia, DataCache, DurableMediaSet,
    FaultInjectingBacking, FaultPlan, MediaImage, MemBacking, MemMedia, NodeClient, NodeConfig,
    NodeMode, NodeServerBuilder, RecoveryReport, WritePolicy,
};
use sievestore_types::obs::{CapturingSink, FieldValue};
use sievestore_types::{Micros, SieveError};

const CAPACITY: usize = 8;
const KEY_SPACE: u64 = 16;
const OPS: u64 = 40;

fn block(fill: u8) -> Block {
    [fill; 512]
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A durable cache on crash-point media, plus the handles needed to cut
/// power and reboot from the survivors.
struct Rig {
    /// `None` when the cut landed during open-time recovery/compaction
    /// (before the workload could start) — itself a crash point worth
    /// covering.
    cache: Option<DataCache<MemBacking>>,
    handle: CrashHandle,
    images: (MediaImage, MediaImage, MediaImage),
}

/// Formats a fresh durable store on plain memory media and returns its
/// bytes, so the crash clock covers reopen + workload rather than mkfs.
fn fresh_formatted_bytes() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let media = DurableMediaSet::in_memory();
    let (cache, _) = DataCache::new_durable(MemBacking::new(), PolicySpec::Aod, CAPACITY, media)
        .expect("fresh media formats cleanly");
    cache.durable().unwrap().clone_media_bytes().unwrap()
}

fn build_rig(plan: CrashPlan, policy: WritePolicy) -> Rig {
    let formatted = fresh_formatted_bytes();
    let handle = CrashHandle::new(plan);
    let frames = CrashPointMedia::with_initial(formatted.0, handle.clone());
    let journal_a = CrashPointMedia::with_initial(formatted.1, handle.clone());
    let journal_b = CrashPointMedia::with_initial(formatted.2, handle.clone());
    let images = (frames.image(), journal_a.image(), journal_b.image());
    let media = DurableMediaSet {
        frames: Box::new(frames),
        journal_a: Box::new(journal_a),
        journal_b: Box::new(journal_b),
    };
    let cache = match DataCache::new_durable(MemBacking::new(), PolicySpec::Aod, CAPACITY, media) {
        Ok((cache, _)) => Some(cache.with_write_policy(policy)),
        Err(e) => {
            assert!(handle.crashed(), "open failed without a power cut: {e}");
            None
        }
    };
    Rig {
        cache,
        handle,
        images,
    }
}

/// What the workload observed before the cut.
struct WorkloadTrace {
    /// key → last *acknowledged* payload.
    shadow: HashMap<u64, Block>,
    /// key → every fill byte ever attempted for it (acked or not).
    seen_fills: HashMap<u64, Vec<u8>>,
    /// The write that was in flight when the cut landed, if any.
    in_flight: Option<(u64, Block)>,
    crashed: bool,
}

fn empty_trace(crashed: bool) -> WorkloadTrace {
    WorkloadTrace {
        shadow: HashMap::new(),
        seen_fills: HashMap::new(),
        in_flight: None,
        crashed,
    }
}

/// Runs the deterministic workload until completion or power cut.
fn run_workload(
    cache: &mut DataCache<MemBacking>,
    handle: &CrashHandle,
    workload_seed: u64,
) -> WorkloadTrace {
    let mut rng = workload_seed;
    let mut trace = WorkloadTrace {
        shadow: HashMap::new(),
        seen_fills: HashMap::new(),
        in_flight: None,
        crashed: false,
    };
    for i in 0..OPS {
        let r = splitmix(&mut rng);
        let key = r % KEY_SPACE;
        let op = (r >> 8) % 10;
        let now = Micros::from_secs(i);
        if op < 6 {
            let fill = (r >> 16) as u8;
            trace.seen_fills.entry(key).or_default().push(fill);
            match cache.write(key, &block(fill), now) {
                Ok(_) => {
                    trace.shadow.insert(key, block(fill));
                }
                Err(e) => {
                    assert!(handle.crashed(), "write failed without a power cut: {e}");
                    trace.in_flight = Some((key, block(fill)));
                }
            }
        } else if op < 9 {
            match cache.read(key, now) {
                Ok((data, _)) => {
                    let expect = trace.shadow.get(&key).copied().unwrap_or(block(0));
                    assert_eq!(data, expect, "pre-crash read of key {key} is stale");
                }
                Err(e) => {
                    assert!(handle.crashed(), "read failed without a power cut: {e}");
                }
            }
        } else {
            // A flush is allowed to fail only at the cut.
            if let Err(e) = cache.flush() {
                assert!(handle.crashed(), "flush failed without a power cut: {e}");
            }
        }
        if handle.crashed() {
            trace.crashed = true;
            break;
        }
    }
    trace
}

/// Clones the ensemble's contents (the backing store survives the cut —
/// only the node's own durable media loses power).
fn clone_backing(cache: &DataCache<MemBacking>) -> MemBacking {
    let fresh = MemBacking::new();
    for key in 0..KEY_SPACE {
        let data = cache.backing().read_block(key).unwrap();
        if data != block(0) {
            fresh.write_block(key, &data).unwrap();
        }
    }
    fresh
}

/// Reboots a cache from the surviving media bytes.
fn reboot(
    images: &(MediaImage, MediaImage, MediaImage),
    backing: MemBacking,
    policy: WritePolicy,
) -> Result<(DataCache<MemBacking>, RecoveryReport), SieveError> {
    let media = DurableMediaSet {
        frames: Box::new(MemMedia::from_bytes(images.0.bytes())),
        journal_a: Box::new(MemMedia::from_bytes(images.1.bytes())),
        journal_b: Box::new(MemMedia::from_bytes(images.2.bytes())),
    };
    DataCache::new_durable(backing, PolicySpec::Aod, CAPACITY, media)
        .map(|(c, r)| (c.with_write_policy(policy), r))
}

/// Invariant 1: every payload the rebooted cache serves must be a value
/// some write produced for that key (acked or in-flight) or the zero
/// block — never torn or rotted garbage.
fn assert_no_garbage(cache: &mut DataCache<MemBacking>, trace: &WorkloadTrace) {
    for key in 0..KEY_SPACE {
        let (data, _) = cache.read(key, Micros::from_secs(1_000 + key)).unwrap();
        let fill = data[0];
        let uniform = data.iter().all(|&b| b == fill);
        assert!(
            uniform,
            "key {key}: non-uniform payload can only be garbage"
        );
        let legal = fill == 0
            || trace
                .seen_fills
                .get(&key)
                .is_some_and(|fills| fills.contains(&fill));
        assert!(legal, "key {key}: served fill {fill:#x} was never written");
    }
}

/// Runs one full crash schedule and checks all invariants.
fn run_schedule(schedule: u64, crash_at: u64, policy: WritePolicy, torn: bool, rot: u32) {
    let mut plan = CrashPlan::no_crash(schedule).crash_at_step(crash_at);
    if torn {
        plan = plan.with_torn_tail();
    }
    if rot > 0 {
        plan = plan.with_bit_rot(rot);
    }
    let mut rig = build_rig(plan, policy);
    let workload_seed = 1 + schedule / 97; // several crash points share a workload
    let (trace, backing) = match rig.cache.take() {
        Some(mut cache) => {
            let trace = run_workload(&mut cache, &rig.handle, workload_seed);
            let backing = clone_backing(&cache);
            (trace, backing)
        }
        // The cut landed inside open-time recovery — nothing was acked,
        // the backing is empty, and reboot must still succeed.
        None => (empty_trace(true), MemBacking::new()),
    };

    let rebooted = reboot(&rig.images, backing, policy);
    let (mut cache, report) = match rebooted {
        Ok(ok) => ok,
        Err(e) => {
            // Unrecoverable media is only legal under bit rot (a flipped
            // header bit); a pure power cut must always recover.
            assert!(rot > 0, "schedule {schedule}: clean cut unrecoverable: {e}");
            return;
        }
    };

    if rot == 0 {
        // A pure power cut (even with a torn in-flight write) can only
        // lose *unacknowledged* state: fresh-slot writes and the
        // un-synced journal tail. Nothing acked is quarantined or lost.
        assert_eq!(
            report.quarantined, 0,
            "schedule {schedule}: acked frame quarantined without bit rot"
        );
        assert_eq!(
            report.lost_dirty, 0,
            "schedule {schedule}: acked dirty frame lost without bit rot"
        );
        // Invariants 2 and 3: every acknowledged write is readable with
        // exactly the acknowledged payload. The in-flight write (never
        // acked) may read as either its old or its attempted value.
        for (&key, &expect) in &trace.shadow {
            let (data, _) = cache.read(key, Micros::from_secs(2_000 + key)).unwrap();
            if let Some((in_key, attempted)) = trace.in_flight {
                if in_key == key {
                    assert!(
                        data == expect || data == attempted,
                        "schedule {schedule}: in-flight key {key} reads neither old nor new"
                    );
                    continue;
                }
            }
            assert_eq!(
                data, expect,
                "schedule {schedule}: acked write to key {key} lost (policy {policy:?})"
            );
        }
    }
    // Invariant 1 holds regardless of rot.
    assert_no_garbage(&mut cache, &trace);
}

/// Counts the media mutation steps of an uncut run, bounding the sweep.
fn steps_for(policy: WritePolicy, workload_seed: u64) -> u64 {
    let mut rig = build_rig(CrashPlan::no_crash(0), policy);
    let mut cache = rig.cache.take().expect("no cut in the dry run");
    let trace = run_workload(&mut cache, &rig.handle, workload_seed);
    assert!(!trace.crashed);
    rig.handle.steps()
}

fn schedule_count() -> u64 {
    std::env::var("CRASH_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

#[test]
fn power_cut_schedules_preserve_all_invariants_write_back() {
    let schedules = schedule_count();
    let mut ran = 0u64;
    let mut sweep = 0u64;
    while ran < schedules {
        let workload_seed = 1 + sweep / 97;
        let total = steps_for(WritePolicy::WriteBack, workload_seed);
        let crash_at = sweep % total;
        let torn = sweep.is_multiple_of(2);
        let rot = if sweep % 11 == 7 { 2 } else { 0 };
        run_schedule(sweep, crash_at, WritePolicy::WriteBack, torn, rot);
        ran += 1;
        sweep += 1;
    }
    assert!(ran >= schedules);
}

#[test]
fn power_cut_schedules_preserve_all_invariants_write_through() {
    // Write-through mirrors are best-effort, so the cut is invisible to
    // the workload: every op keeps succeeding against the backing store
    // and nothing acked can be lost (invariant 2).
    let schedules = schedule_count() / 5;
    for sweep in 0..schedules {
        let workload_seed = 1 + sweep / 29;
        let total = steps_for(WritePolicy::WriteThrough, workload_seed);
        run_schedule(
            10_000 + sweep,
            sweep % total,
            WritePolicy::WriteThrough,
            sweep % 2 == 1,
            if sweep % 13 == 5 { 1 } else { 0 },
        );
    }
}

#[test]
fn clean_restart_recovers_the_full_resident_set_warm() {
    // Acceptance: after an orderly run (no crash), restart recovers a
    // warm cache whose resident-frame count equals the pre-shutdown
    // count, and every frame serves the right payload as a hit.
    let mut rig = build_rig(CrashPlan::no_crash(42), WritePolicy::WriteBack);
    let mut cache = rig.cache.take().expect("no cut");
    let trace = run_workload(&mut cache, &rig.handle, 3);
    assert!(!trace.crashed);
    let resident_before = cache.resident_blocks();
    assert!(resident_before > 0);
    let backing = clone_backing(&cache);
    drop(cache);

    let (mut cache, report) = reboot(&rig.images, backing, WritePolicy::WriteBack).unwrap();
    assert_eq!(report.recovered as usize, resident_before);
    assert_eq!(cache.resident_blocks(), resident_before);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.lost_dirty, 0);
    for (&key, &expect) in &trace.shadow {
        let (data, outcome) = cache.read(key, Micros::from_secs(5_000 + key)).unwrap();
        assert_eq!(data, expect);
        // Keys that were resident before shutdown are warm hits now.
        if report.recovered > 0 && outcome.hit {
            assert_eq!(data, expect);
        }
    }
}

#[test]
fn targeted_bit_rot_is_quarantined_never_served() {
    // Rot one resident frame's payload on the "disk", reboot, and make
    // sure recovery quarantines it and the read falls back to backing.
    let mut rig = build_rig(CrashPlan::no_crash(7), WritePolicy::WriteThrough);
    let mut live = rig.cache.take().expect("no cut");
    for key in 0..4u64 {
        live.write(key, &block(key as u8 + 0x10), Micros::from_secs(key))
            .unwrap();
    }
    let resident = live.resident_blocks();
    let backing = clone_backing(&live);
    drop(live);

    // Flip one bit in every possible frame-slot payload region so at
    // least one occupied slot rots (slot assignment is an internal
    // detail).
    const FILE_HEADER_LEN: usize = 24;
    const FRAME_RECORD_LEN: usize = 544;
    let seg_len = rig.images.0.bytes().len();
    let mut offset = FILE_HEADER_LEN + 100;
    while offset < seg_len {
        rig.images.0.flip_bit(offset, 3);
        offset += FRAME_RECORD_LEN;
    }

    let (mut cache, report) = reboot(&rig.images, backing, WritePolicy::WriteThrough).unwrap();
    assert_eq!(report.quarantined as usize, resident, "all slots rotted");
    assert_eq!(report.lost_dirty, 0, "write-through: backing has a copy");
    // Every key still reads correctly — re-fetched from backing, the
    // rotted payloads are never served.
    for key in 0..4u64 {
        let (data, _) = cache.read(key, Micros::from_secs(100 + key)).unwrap();
        assert_eq!(data, block(key as u8 + 0x10));
    }
}

// ---------------------------------------------------------------------------
// Server-level integration: shutdown flush under faults, degraded start,
// background scrub.
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sievestore-{tag}-{}", std::process::id()))
}

#[test]
fn shutdown_flush_failures_are_reported_and_recovered_from_journal() {
    // Satellite: a write-back node whose backing store fails every
    // shutdown flush round must (a) report each failed round as a
    // structured event rather than swallowing it, and (b) leave the
    // dirty frames journaled so the next open restores them.
    let dir = temp_dir("flushfail");
    std::fs::remove_dir_all(&dir).ok();
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(9));
    let faults = backing.handle();
    let sink = Arc::new(CapturingSink::new());
    let config = NodeConfig {
        shutdown_flush_retries: 2,
        ..NodeConfig::default()
    };
    let (server, report) = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .sink(sink.clone())
        .serve_durable(
            backing,
            PolicySpec::Aod,
            64,
            WritePolicy::WriteBack,
            DurableMediaSet::open_dir(&dir).unwrap(),
        )
        .unwrap();
    assert_eq!(report.expect("fresh media opens").recovered, 0);

    let mut client = NodeClient::connect(server.addr()).unwrap();
    for key in 0..6u64 {
        client.write_block(key, &block(0x40 + key as u8)).unwrap();
    }
    client.quit().unwrap();

    // Every backing write now fails: all flush rounds come up short.
    faults.set_plan(FaultPlan::new(9).with_write_error_prob(1.0));
    server.shutdown();

    let failed = sink.named("node.flush.failed");
    assert_eq!(
        failed.len(),
        3,
        "one event per failed round (1 + shutdown_flush_retries)"
    );
    for event in &failed {
        let context = event
            .fields
            .iter()
            .find(|(k, _)| *k == "context")
            .expect("context field");
        assert!(matches!(context.1, FieldValue::Str("shutdown")));
        let still_dirty = event
            .fields
            .iter()
            .find(|(k, _)| *k == "still_dirty")
            .expect("still_dirty field");
        assert!(matches!(still_dirty.1, FieldValue::U64(6)));
    }

    // Reopen from the journal: the dirty frames' only copy survives.
    let (cache, report) = DataCache::new_durable(
        MemBacking::new(),
        PolicySpec::Aod,
        64,
        DurableMediaSet::open_dir(&dir).unwrap(),
    )
    .unwrap();
    let mut cache_wb = cache.with_write_policy(WritePolicy::WriteBack);
    assert_eq!(report.recovered, 6, "all dirty frames restored");
    assert_eq!(report.lost_dirty, 0);
    for key in 0..6u64 {
        let (data, _) = cache_wb.read(key, Micros::from_secs(key)).unwrap();
        assert_eq!(data, block(0x40 + key as u8), "dirty payload survives");
    }
    // With the backing healed, the recovered frames flush through.
    assert_eq!(cache_wb.flush().unwrap(), 6);
    for key in 0..6u64 {
        assert_eq!(
            cache_wb.backing().read_block(key).unwrap(),
            block(0x40 + key as u8)
        );
    }
    drop(cache_wb);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecoverable_media_starts_degraded_and_still_serves() {
    // Garbage on the durable media must not take the node down: it
    // starts in degraded pass-through with the breaker open, emits a
    // recovery-failed event, and serves reads/writes from backing.
    let media = DurableMediaSet {
        frames: Box::new(MemMedia::from_bytes(vec![0xAB; 4096])),
        journal_a: Box::new(MemMedia::new()),
        journal_b: Box::new(MemMedia::new()),
    };
    let sink = Arc::new(CapturingSink::new());
    let (server, report) = NodeServerBuilder::new("127.0.0.1:0")
        .sink(sink.clone())
        .serve_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            16,
            WritePolicy::WriteThrough,
            media,
        )
        .unwrap();
    assert!(report.is_none(), "no recovery happened");
    assert_eq!(server.mode(), NodeMode::Degraded);
    assert_eq!(sink.named("node.recovery.failed").len(), 1);
    assert!(sink.named("node.recovery.complete").is_empty());

    let mut client = NodeClient::connect(server.addr()).unwrap();
    client.write_block(3, &block(0x33)).unwrap();
    let (data, _) = client.read_block(3).unwrap();
    assert_eq!(data, block(0x33), "degraded node still serves from backing");
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn recovery_on_start_emits_completion_event() {
    let dir = temp_dir("recoverevt");
    std::fs::remove_dir_all(&dir).ok();
    {
        let (server, _) = NodeServerBuilder::new("127.0.0.1:0")
            .sink(Arc::new(CapturingSink::new()))
            .serve_durable(
                MemBacking::new(),
                PolicySpec::Aod,
                16,
                WritePolicy::WriteThrough,
                DurableMediaSet::open_dir(&dir).unwrap(),
            )
            .unwrap();
        let mut client = NodeClient::connect(server.addr()).unwrap();
        for key in 0..5u64 {
            client.write_block(key, &block(key as u8 + 1)).unwrap();
        }
        client.quit().unwrap();
        server.shutdown();
    }
    let sink = Arc::new(CapturingSink::new());
    let (server, report) = NodeServerBuilder::new("127.0.0.1:0")
        .sink(sink.clone())
        .serve_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            16,
            WritePolicy::WriteThrough,
            DurableMediaSet::open_dir(&dir).unwrap(),
        )
        .unwrap();
    let report = report.expect("media recovered");
    assert_eq!(report.recovered, 5, "orderly shutdown recovers warm");
    assert_eq!(server.mode(), NodeMode::Healthy);
    let events = sink.named("node.recovery.complete");
    assert_eq!(events.len(), 1);
    let recovered = events[0]
        .fields
        .iter()
        .find(|(k, _)| *k == "recovered")
        .expect("recovered field");
    assert!(matches!(recovered.1, FieldValue::U64(5)));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_scrub_quarantines_rot_and_reads_stay_correct() {
    let dir = temp_dir("scrub");
    std::fs::remove_dir_all(&dir).ok();
    let sink = Arc::new(CapturingSink::new());
    let config = NodeConfig {
        scrub_interval: Some(Duration::from_millis(5)),
        scrub_batch: 1024,
        ..NodeConfig::default()
    };
    let (server, _) = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .sink(sink.clone())
        .serve_durable(
            MemBacking::new(),
            PolicySpec::Aod,
            16,
            WritePolicy::WriteThrough,
            DurableMediaSet::open_dir(&dir).unwrap(),
        )
        .unwrap();
    let mut client = NodeClient::connect(server.addr()).unwrap();
    for key in 0..4u64 {
        client.write_block(key, &block(0x60 + key as u8)).unwrap();
    }

    // Rot every slot's payload region behind the server's back.
    const FILE_HEADER_LEN: u64 = 24;
    const FRAME_RECORD_LEN: u64 = 544;
    {
        use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join("frames.seg"))
            .unwrap();
        let len = file.metadata().unwrap().len();
        let mut offset = FILE_HEADER_LEN + 200;
        while offset < len {
            file.seek(SeekFrom::Start(offset)).unwrap();
            let mut byte = [0u8; 1];
            file.read_exact(&mut byte).unwrap();
            byte[0] ^= 0x10;
            file.seek(SeekFrom::Start(offset)).unwrap();
            file.write_all(&byte).unwrap();
            offset += FRAME_RECORD_LEN;
        }
        file.sync_all().unwrap();
    }

    // The scrubber must notice within a couple of seconds.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while sink.named("node.scrub.quarantined").is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "scrubber never quarantined the rotted slots"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Reads stay correct throughout: resident frames in memory are
    // authoritative and the rotted on-disk copies are never served.
    for key in 0..4u64 {
        let (data, _) = client.read_block(key).unwrap();
        assert_eq!(data, block(0x60 + key as u8));
    }
    client.quit().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
