//! Cross-crate integration: the appliance's discrete sieve must agree
//! with an independent count over the paper's offline log substrate, and
//! the trace codec must round-trip generator output through the
//! filesystem.

use sievestore::{PolicySpec, SieveStoreBuilder};
use sievestore_extsort::{AccessCounter, AccessLog};
use sievestore_trace::{EnsembleConfig, SyntheticTrace, TraceReader, TraceStats, TraceWriter};
use sievestore_types::Day;

#[test]
fn appliance_batch_selection_matches_external_log_counts() {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(55)).expect("valid ensemble");
    let threshold = 10u64;

    // Drive the appliance over day 0.
    let mut store = SieveStoreBuilder::new()
        .capacity_blocks(1 << 20)
        .policy(PolicySpec::SieveStoreD { threshold })
        .build()
        .expect("valid appliance");
    // Independently, log every access the way the paper's offline pass
    // does: hash-partitioned <address, 1> tuples with periodic reduction.
    let dir = std::env::temp_dir().join(format!("sievestore-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut log = AccessLog::create(&dir, 8).expect("temp dir");

    let mut i = 0usize;
    for req in trace.day_requests(Day::new(0)) {
        for block in req.blocks() {
            store.access(block.raw(), req.kind, req.timestamp);
            log.record(block.raw());
            i += 1;
            if i.is_multiple_of(100_000) {
                log.compact().expect("compaction");
            }
        }
    }

    let transition = store
        .day_boundary(Day::new(1))
        .expect("discrete policy installs");
    let mut from_appliance = transition.allocated.clone();
    from_appliance.sort_unstable();

    let counts = log.finish().expect("log finalize");
    let from_log = counts.keys_with_at_least(threshold);

    assert_eq!(
        from_appliance, from_log,
        "appliance selection must equal offline log reduction"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_survives_filesystem_roundtrip() {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(77)).expect("valid ensemble");
    let requests = trace.day_requests(Day::new(1));

    let dir = std::env::temp_dir().join(format!("sievestore-traceio-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("day1.sstr");

    let file = std::fs::File::create(&path).expect("create trace file");
    let mut writer = TraceWriter::with_count(file, requests.len() as u64).expect("header");
    for r in &requests {
        writer.write(r).expect("record write");
    }
    writer.finish().expect("flush");

    let file = std::fs::File::open(&path).expect("open trace file");
    let mut reader = TraceReader::new(file).expect("valid header");
    assert_eq!(reader.declared_count(), Some(requests.len() as u64));
    let reread: Vec<_> = (&mut reader).map(|r| r.expect("valid record")).collect();
    assert_eq!(reread, requests);

    // Statistics agree between the in-memory and re-read streams.
    let direct: TraceStats = requests.iter().collect();
    let via_disk: TraceStats = reread.iter().collect();
    assert_eq!(direct.days(), via_disk.days());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn continuous_appliance_hits_grow_monotonically_with_capacity() {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(88)).expect("valid ensemble");
    let requests = trace.day_requests(Day::new(1));
    let mut last_hits = 0u64;
    for capacity in [1 << 8, 1 << 12, 1 << 16] {
        let mut store = SieveStoreBuilder::new()
            .capacity_blocks(capacity)
            .policy(PolicySpec::Aod)
            .build()
            .expect("valid appliance");
        for req in &requests {
            for block in req.blocks() {
                store.access(block.raw(), req.kind, req.timestamp);
            }
        }
        let hits = store.stats().hits();
        assert!(
            hits >= last_hits,
            "capacity {capacity}: hits {hits} < smaller cache's {last_hits}"
        );
        last_hits = hits;
    }
    assert!(last_hits > 0);
}
