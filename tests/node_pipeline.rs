//! Pipelined protocol integration: many requests in flight per
//! connection must complete correctly, out-of-order-tolerant via
//! correlation ids, and leave the cache in exactly the state a serial
//! client would — while preserving the retry/breaker fault semantics of
//! the serial path.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use sievestore::PolicySpec;
use sievestore_node::{
    ClientConfig, DataCache, ErrorCode, FaultInjectingBacking, FaultPlan, Incoming, MemBacking,
    NodeClient, NodeConfig, NodeMode, NodeServerBuilder, OpResult, PipedReply, PipedRequest,
    PipelinedClient, Reply, Request, RetryPolicy,
};

fn block(fill: u8) -> [u8; 512] {
    [fill; 512]
}

/// A fast deterministic retry schedule for fault tests.
fn fast_client() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        },
        ..ClientConfig::default()
    }
}

#[test]
fn pipelined_writes_and_reads_round_trip() {
    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");
    let mut client = PipelinedClient::connect(server.addr(), 8).expect("connect");

    let mut completions = Vec::new();
    for key in 0..32u64 {
        completions.extend(client.write(key, &block(key as u8)).expect("submit write"));
    }
    completions.extend(client.drain().expect("drain writes"));
    assert_eq!(completions.len(), 32, "every write completes exactly once");
    for c in &completions {
        assert!(
            matches!(c.result, Ok(OpResult::Write { .. })),
            "write of key {} failed: {:?}",
            c.key,
            c.result
        );
    }

    let mut completions = Vec::new();
    for key in 0..32u64 {
        completions.extend(client.read(key).expect("submit read"));
    }
    completions.extend(client.drain().expect("drain reads"));
    assert_eq!(completions.len(), 32);
    for c in completions {
        match c.result {
            Ok(OpResult::Read { hit, data }) => {
                assert!(hit, "key {} resident after write", c.key);
                assert_eq!(data[0], c.key as u8, "payload for key {}", c.key);
            }
            other => panic!("read of key {} returned {other:?}", c.key),
        }
    }

    assert_eq!(client.in_flight(), 0);
    client.quit().expect("quit");
    server.shutdown();
}

/// The differential check for satellite (c): the same logical workload
/// driven serially and pipelined must leave byte-identical cache state —
/// identical appliance counters and identical data on every key.
#[test]
fn pipelined_and_serial_clients_reach_identical_cache_state() {
    let spawn = || {
        let cache =
            DataCache::new(MemBacking::new(), PolicySpec::Aod, 128).expect("valid appliance");
        NodeServerBuilder::new("127.0.0.1:0")
            .serve(cache)
            .expect("bind")
    };
    let serial_server = spawn();
    let piped_server = spawn();

    // Workload: populate, re-read hot keys, probe cold keys, overwrite.
    let writes: Vec<u64> = (0..24).collect();
    let rereads: Vec<u64> = (0..24).chain(0..8).collect();
    let cold: Vec<u64> = (100..108).collect();
    let overwrites: Vec<u64> = (5..10).collect();

    // Serial client.
    {
        let mut c = NodeClient::connect(serial_server.addr()).expect("connect");
        for &k in &writes {
            c.write_block(k, &block(k as u8)).expect("write");
        }
        for &k in &rereads {
            c.read_block(k).expect("read");
        }
        for &k in &cold {
            c.read_block(k).expect("cold read");
        }
        for &k in &overwrites {
            c.write_block(k, &block(0xA0 | k as u8)).expect("overwrite");
        }
        c.quit().expect("quit");
    }

    // Pipelined client, window 6, same logical order.
    {
        let mut c = PipelinedClient::connect(piped_server.addr(), 6).expect("connect");
        for &k in &writes {
            c.write(k, &block(k as u8)).expect("write");
        }
        for &k in &rereads {
            c.read(k).expect("read");
        }
        for &k in &cold {
            c.read(k).expect("cold read");
        }
        for &k in &overwrites {
            c.write(k, &block(0xA0 | k as u8)).expect("overwrite");
        }
        let done = c.drain().expect("drain");
        assert!(done.iter().all(|c| c.result.is_ok()));
        c.quit().expect("quit");
    }

    assert_eq!(
        serial_server.stats(),
        piped_server.stats(),
        "serial and pipelined workloads must produce identical counters"
    );
    assert_eq!(serial_server.mode(), piped_server.mode());

    // Every key holds identical bytes on both nodes.
    let mut a = NodeClient::connect(serial_server.addr()).expect("connect");
    let mut b = NodeClient::connect(piped_server.addr()).expect("connect");
    for k in writes.iter().chain(&cold) {
        let (da, _) = a.read_block(*k).expect("read a");
        let (db, _) = b.read_block(*k).expect("read b");
        assert_eq!(da, db, "key {k} diverged between serial and pipelined");
    }
    a.quit().expect("quit");
    b.quit().expect("quit");
    serial_server.shutdown();
    piped_server.shutdown();
}

/// Raw wire check: enveloped requests echo the client-chosen correlation
/// id on the matching reply, and a batch written as one TCP segment
/// comes back as one reply per request.
#[test]
fn piped_envelopes_echo_correlation_ids() {
    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");

    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    // Batch two envelopes with deliberately non-sequential corr ids into
    // a single write.
    let mut batch = Vec::new();
    PipedRequest {
        corr: 0xDEAD_BEEF,
        request: Request::Write {
            key: 9,
            data: Box::new(block(0x99)),
        },
    }
    .encode_into(&mut batch);
    PipedRequest {
        corr: 7,
        request: Request::Read { key: 9 },
    }
    .encode_into(&mut batch);
    writer.write_all(&batch).expect("write batch");
    writer.flush().expect("flush");

    let first = PipedReply::decode(&mut reader).expect("first reply");
    assert_eq!(first.corr, 0xDEAD_BEEF);
    let second = PipedReply::decode(&mut reader).expect("second reply");
    assert_eq!(second.corr, 7);
    match second.reply {
        sievestore_node::Reply::Read { hit, data } => {
            assert!(hit);
            assert_eq!(data[0], 0x99);
        }
        other => panic!("expected read reply, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn pipelined_client_retries_transient_faults_in_place() {
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0x91));
    let handle = backing.handle();
    let cache = DataCache::new(backing, PolicySpec::Aod, 64).expect("valid appliance");
    // High threshold: the breaker must stay closed so the retry itself
    // is what absorbs the fault.
    let config = NodeConfig {
        breaker_threshold: 100,
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)
        .expect("bind");

    let mut client =
        PipelinedClient::connect_with(server.addr(), fast_client(), 4).expect("connect");
    handle.fail_next(1);
    client.read(3).expect("submit");
    let done = client.drain().expect("drain");
    assert_eq!(done.len(), 1);
    assert!(done[0].result.is_ok(), "retry absorbs the transient fault");
    assert!(client.retries() >= 1, "the fault cost at least one retry");

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn pipelined_op_fails_individually_when_retries_exhausted() {
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0x92));
    let handle = backing.handle();
    let cache = DataCache::new(backing, PolicySpec::Aod, 64).expect("valid appliance");
    let config = NodeConfig {
        breaker_threshold: 100,
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)
        .expect("bind");

    let no_retry = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let mut client = PipelinedClient::connect_with(server.addr(), no_retry, 4).expect("connect");

    // One doomed read between two healthy ops: only the faulted op may
    // fail; its neighbors complete normally.
    client.write(1, &block(0x11)).expect("submit write");
    let before = client.drain().expect("drain write");
    assert!(before.iter().all(|c| c.result.is_ok()));

    handle.fail_next(1);
    client.read(2).expect("submit doomed read");
    client.read(1).expect("submit healthy read");
    let done = client.drain().expect("drain");
    assert_eq!(done.len(), 2);
    let doomed = done.iter().find(|c| c.key == 2).expect("doomed present");
    let healthy = done.iter().find(|c| c.key == 1).expect("healthy present");
    assert!(doomed.result.is_err(), "faulted op surfaces its own error");
    assert!(healthy.result.is_ok(), "neighboring op is untouched");

    client.quit().expect("quit");
    server.shutdown();
}

/// Regression: a transport failure surfacing inside a submit (the
/// buffered `write_all` in `encode_op`) must reconnect transparently.
/// The client once shared one scratch buffer between the op being
/// encoded and the window resubmission, so after a reconnect the retry
/// loop sent the whole window a second time — the server answered
/// every correlation id twice and the new op's frame was lost.
#[test]
fn pipelined_client_survives_connection_loss_mid_submit() {
    use std::io::Read as _;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        // Conn 1: swallow a little, then drop without replying. The
        // unread bytes left behind turn the close into an RST, so the
        // client's next buffered flush fails mid-submit.
        {
            let (mut s, _) = listener.accept().expect("accept first conn");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
        }
        // Conn 2: a well-behaved pipelined responder until quit.
        let (s, _) = listener.accept().expect("accept second conn");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut writer = BufWriter::new(s);
        while let Ok(Incoming::Piped(piped)) = Incoming::decode(&mut reader) {
            let reply = match piped.request {
                Request::Read { .. } => Reply::Read {
                    hit: false,
                    data: Box::new(block(0)),
                },
                Request::Write { .. } => Reply::Write { hit: false },
                _ => Reply::Error {
                    code: ErrorCode::Protocol,
                    message: "unexpected request".into(),
                },
            };
            let envelope = PipedReply {
                corr: piped.corr,
                reply,
            };
            envelope.encode(&mut writer).expect("encode reply");
            writer.flush().expect("flush reply");
        }
    });

    let config = ClientConfig {
        read_timeout: Some(Duration::from_secs(2)),
        ..fast_client()
    };
    // Window larger than the op count, so the transport failure can
    // only surface through a submit's write, never through a read.
    let mut client = PipelinedClient::connect_with(addr, config, 64).expect("connect");
    let mut done = Vec::new();
    // Enough ops to overflow the 8 KiB write buffer and reach the dead
    // socket; the pause lets conn 1's RST land before the next flush.
    for key in 0..20u64 {
        done.extend(client.write(key, &block(key as u8)).expect("submit"));
    }
    std::thread::sleep(Duration::from_millis(100));
    for key in 20..48u64 {
        done.extend(client.write(key, &block(key as u8)).expect("submit"));
    }
    done.extend(client.drain().expect("drain after transparent reconnect"));

    assert_eq!(done.len(), 48, "every op completes exactly once");
    for c in &done {
        assert!(c.result.is_ok(), "key {} failed: {:?}", c.key, c.result);
    }
    let mut keys: Vec<u64> = done.iter().map(|c| c.key).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), 48, "no op completed twice");
    assert!(client.reconnects() >= 1, "the connection loss was observed");

    client.quit().expect("quit");
    server.join().expect("server thread");
}

/// Fault smoke for satellite (e): sustained faults trip the breaker
/// while a pipelined client is driving, degraded pass-through keeps
/// serving correct data, and the node probes back to healthy.
#[test]
fn breaker_trips_and_recovers_under_pipelined_load() {
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0x93));
    let handle = backing.handle();
    let cache = DataCache::new(backing, PolicySpec::Aod, 64).expect("valid appliance");
    let config = NodeConfig {
        breaker_threshold: 3,
        breaker_cooldown: 4,
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)
        .expect("bind");

    let mut client =
        PipelinedClient::connect_with(server.addr(), fast_client(), 4).expect("connect");
    client.write(1, &block(0x5A)).expect("seed");
    client.drain().expect("drain seed");

    // Three consecutive failures open the breaker; the retried request
    // then completes via degraded pass-through. The key must be
    // uncached so every attempt reaches the (faulting) backing store.
    handle.fail_next(3);
    client.read(2).expect("submit");
    let done = client.drain().expect("drain");
    assert!(done.iter().all(|c| c.result.is_ok()));
    assert_eq!(server.mode(), NodeMode::Degraded, "breaker tripped");

    // Degraded reads still return correct bytes.
    client.read(1).expect("submit degraded");
    let done = client.drain().expect("drain degraded");
    match &done[0].result {
        Ok(OpResult::Read { data, .. }) => assert_eq!(data[0], 0x5A),
        other => panic!("degraded read failed: {other:?}"),
    }

    // Spend the cooldown; the probe finds a healed backing and closes
    // the breaker.
    for _ in 0..8 {
        client.read(1).expect("submit recovery");
        client.drain().expect("drain recovery");
    }
    assert_eq!(server.mode(), NodeMode::Healthy, "breaker recovered");

    client.quit().expect("quit");
    server.shutdown();
}
