//! Differential guard for the allocation-free hot-path refactor.
//!
//! The `U64Map`-backed `LruCache`, the slab-backed `Mct`, the `U64Set`
//! `BatchCache` and the fast `InMemoryCounter` must be *semantically
//! invisible*: every policy's per-day metrics over a seeded trace have to
//! match, bit for bit, the metrics the pre-refactor `std::collections`
//! structures produced. The digests below were captured from the
//! HashMap/HashSet implementations before the swap and are pinned here;
//! any behavioural drift in the replacement structures changes a digest
//! and fails the run.

use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{simulate, simulate_sharded, EvictionPolicy, SimConfig, SimResult};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};

const SEED: u64 = 0xD1FF_5EED;
const CAPACITY: usize = 16_384;

fn trace() -> SyntheticTrace {
    SyntheticTrace::new(EnsembleConfig::tiny(SEED)).expect("tiny trace builds")
}

fn cfg(trace: &SyntheticTrace) -> SimConfig {
    SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(CAPACITY)
}

/// FNV-1a over every day's raw counters, in day order — a change in any
/// single metric of any day changes the digest.
fn digest(result: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for d in &result.days {
        fold(d.read_hits);
        fold(d.write_hits);
        fold(d.read_misses);
        fold(d.write_misses);
        fold(d.allocation_writes);
        fold(d.batch_allocations);
    }
    h
}

/// `(policy, golden digest)` pairs captured from the pre-refactor
/// structures (std HashMap-based LRU index, HashMap-of-counters MCT,
/// HashSet BatchCache, HashMap InMemoryCounter) on this exact trace.
fn golden_cases() -> Vec<(PolicySpec, &'static str, u64)> {
    vec![
        (PolicySpec::Aod, "AOD", GOLDEN_AOD),
        (PolicySpec::Wmna, "WMNA", GOLDEN_WMNA),
        (
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 14)),
            "SieveStore-C",
            GOLDEN_SIEVESTORE_C,
        ),
        (
            PolicySpec::SieveStoreD { threshold: 10 },
            "SieveStore-D",
            GOLDEN_SIEVESTORE_D,
        ),
    ]
}

const GOLDEN_AOD: u64 = 0x292f_354c_3493_b23f;
const GOLDEN_WMNA: u64 = 0xa69c_8c6c_8e39_07bd;
const GOLDEN_SIEVESTORE_C: u64 = 0xf5f1_1ea1_0c21_c434;
const GOLDEN_SIEVESTORE_D: u64 = 0x934c_f200_27c3_78e3;

/// Digests of the same trace with the continuous caches replacing via
/// SIEVE instead of LRU, captured when the policy landed. They pin two
/// things at once: SIEVE's replacement behaviour (visited-bit sparing,
/// hand order) against accidental drift, and — because they differ from
/// the LRU goldens above — that the `eviction` knob actually reaches the
/// appliance.
const GOLDEN_AOD_SIEVE: u64 = 0x7148_30a9_aa5a_5061;
const GOLDEN_WMNA_SIEVE: u64 = 0x60f8_770e_c435_daf3;

#[test]
fn refactored_structures_reproduce_prerefactor_metrics() {
    let t = trace();
    let c = cfg(&t);
    for (spec, name, golden) in golden_cases() {
        let result = simulate(&t, spec, &c).expect("simulation runs");
        let got = digest(&result);
        assert_eq!(
            got, golden,
            "{name}: day-metrics digest {got:#018x} diverged from the \
             pre-refactor golden {golden:#018x}"
        );
    }
}

#[test]
fn sieve_eviction_reproduces_its_own_goldens_and_differs_from_lru() {
    // LRU-vs-SIEVE golden runs: each eviction policy lands on its own
    // pinned digest. The 16K-block cache is under real pressure on this
    // trace, so if the SIEVE path silently fell back to LRU (or vice
    // versa) the digests would collide with the wrong column.
    let t = trace();
    let c = cfg(&t).with_eviction(EvictionPolicy::Sieve);
    for (spec, name, golden, lru_golden) in [
        (PolicySpec::Aod, "AOD", GOLDEN_AOD_SIEVE, GOLDEN_AOD),
        (PolicySpec::Wmna, "WMNA", GOLDEN_WMNA_SIEVE, GOLDEN_WMNA),
    ] {
        let result = simulate(&t, spec, &c).expect("simulation runs");
        let got = digest(&result);
        assert_eq!(
            got, golden,
            "{name} under SIEVE: digest {got:#018x} diverged from the \
             pinned golden {golden:#018x}"
        );
        assert_ne!(
            got, lru_golden,
            "{name}: SIEVE digest collided with the LRU golden — the \
             eviction knob is not reaching the appliance"
        );
    }
}

#[test]
fn sharded_replay_matches_goldens_for_discrete_policies() {
    // The sharded engine shares the refactored structures; discrete
    // policies are bit-identical at any shard count, so they must land on
    // the same pre-refactor digests too.
    let t = trace();
    let c = cfg(&t);
    for shards in [1usize, 4] {
        let (result, _) =
            simulate_sharded(&t, PolicySpec::SieveStoreD { threshold: 10 }, &c, shards)
                .expect("sharded simulation runs");
        assert_eq!(
            digest(&result),
            GOLDEN_SIEVESTORE_D,
            "sharded({shards}) SieveStore-D diverged from the golden digest"
        );
    }
}
