//! Cross-validation: replaying a trace through the *data-holding*
//! appliance must reproduce the simulator's exact policy decisions.
//!
//! The simulation engine (`sievestore-sim`) counts outcomes without
//! payloads; the appliance (`sievestore-node`) moves real bytes. Both sit
//! on the same `SieveStore` policy core, so for an identical access
//! sequence their hit/miss/allocation counts must agree exactly — and
//! the appliance must additionally return correct data for every access.

use sievestore::PolicySpec;
use sievestore_node::{DataCache, MemBacking};
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{simulate_server, SimConfig};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};
use sievestore_types::{Day, RequestKind};

const SERVER: usize = 0;
const CAPACITY: usize = 8_192;

fn trace() -> SyntheticTrace {
    SyntheticTrace::new(EnsembleConfig::tiny(31)).expect("valid ensemble")
}

/// Replays one server's trace through a [`DataCache`], mirroring the
/// engine's access order and timing exactly.
fn replay(policy: PolicySpec) -> sievestore::ApplianceStats {
    let trace = trace();
    let mut cache = DataCache::new(MemBacking::new(), policy, CAPACITY).expect("valid appliance");
    for d in 0..trace.days() {
        let day = Day::new(d);
        cache.day_boundary(day).expect("in-memory staging");
        for req in trace.server_day(SERVER, day) {
            for (i, key) in req.blocks().enumerate() {
                let now = req.block_completion_time(i as u32);
                match req.kind {
                    RequestKind::Read => {
                        cache.read(key.raw(), now).expect("in-memory read");
                    }
                    RequestKind::Write => {
                        cache
                            .write(key.raw(), &[0xAB; 512], now)
                            .expect("in-memory write");
                    }
                }
            }
        }
    }
    *cache.stats()
}

fn engine(policy: PolicySpec) -> sievestore_sim::DayMetrics {
    let trace = trace();
    let cfg =
        SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(CAPACITY);
    simulate_server(&trace, SERVER, policy, &cfg)
        .expect("valid policy")
        .total()
}

fn assert_equivalent(policy_for_replay: PolicySpec, policy_for_engine: PolicySpec) {
    let appliance = replay(policy_for_replay);
    let simulated = engine(policy_for_engine);
    assert_eq!(appliance.read_hits, simulated.read_hits, "read hits");
    assert_eq!(appliance.write_hits, simulated.write_hits, "write hits");
    assert_eq!(appliance.read_misses, simulated.read_misses, "read misses");
    assert_eq!(
        appliance.write_misses, simulated.write_misses,
        "write misses"
    );
    assert_eq!(
        appliance.allocation_writes,
        simulated.allocation_writes + simulated.batch_allocations,
        "allocation-writes"
    );
}

#[test]
fn aod_appliance_matches_simulator_exactly() {
    assert_equivalent(PolicySpec::Aod, PolicySpec::Aod);
}

#[test]
fn wmna_appliance_matches_simulator_exactly() {
    assert_equivalent(PolicySpec::Wmna, PolicySpec::Wmna);
}

#[test]
fn sievestore_c_appliance_matches_simulator_exactly() {
    let cfg = TwoTierConfig::paper_default().with_imct_entries(1 << 14);
    assert_equivalent(PolicySpec::SieveStoreC(cfg), PolicySpec::SieveStoreC(cfg));
}

#[test]
fn sievestore_d_appliance_matches_simulator_exactly() {
    assert_equivalent(
        PolicySpec::SieveStoreD { threshold: 10 },
        PolicySpec::SieveStoreD { threshold: 10 },
    );
}
