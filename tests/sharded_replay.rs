//! Differential tests: the sharded replay engine must report the same
//! metrics as the sequential engine.
//!
//! The sequential `Run` is the reference semantics; `ReplayMode::Sharded`
//! is an optimization and must never change a figure. Discrete policies
//! (SieveStore-D, RandSieve-BlkD, IdealTop1) are bit-identical at *any*
//! shard count because all allocation happens in globally ordered epoch
//! batches. Continuous policies split cache capacity and sieve slots per
//! shard, so equality holds in the ample-capacity (no-eviction) regime —
//! which is what these tests pin — and at one shard unconditionally.

use proptest::prelude::*;
use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    simulate, simulate_sharded, simulate_with_snapshots, EvictionPolicy, ReplayMode, SimConfig,
    SnapshotLog,
};
use sievestore_trace::{EnsembleConfig, SyntheticTrace};

/// Large enough that no policy under the tiny traces ever evicts.
const AMPLE_CAPACITY: usize = 1 << 20;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg(trace: &SyntheticTrace, capacity: usize) -> SimConfig {
    SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(capacity)
}

/// Asserts sequential and sharded runs produce identical per-day metrics
/// for every shard count, and that `with_replay` dispatch agrees with the
/// direct `simulate_sharded` entry point.
fn assert_identical(trace: &SyntheticTrace, spec: &PolicySpec, capacity: usize) {
    let base = cfg(trace, capacity);
    let sequential = simulate(trace, spec.clone(), &base).expect("sequential run");
    for shards in SHARD_COUNTS {
        let (sharded, stats) =
            simulate_sharded(trace, spec.clone(), &base, shards).expect("sharded run");
        assert_eq!(
            sequential.days, sharded.days,
            "{spec:?} diverged at {shards} shards"
        );
        assert_eq!(
            stats.total_blocks(),
            sequential.total().accesses(),
            "{spec:?}: shard routing dropped blocks at {shards} shards"
        );
        let dispatched = simulate(
            trace,
            spec.clone(),
            &base.clone().with_replay(ReplayMode::Sharded(shards)),
        )
        .expect("dispatched run");
        assert_eq!(sequential.days, dispatched.days);
    }
}

#[test]
fn aod_is_shard_count_invariant() {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(101)).unwrap();
    assert_identical(&trace, &PolicySpec::Aod, AMPLE_CAPACITY);
}

#[test]
fn wmna_is_shard_count_invariant() {
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(103)).unwrap();
    assert_identical(&trace, &PolicySpec::Wmna, AMPLE_CAPACITY);
}

#[test]
fn sievestore_d_is_shard_count_invariant_even_under_eviction() {
    // Discrete batch allocation is coordinated globally, so equality
    // holds even with a small cache that overflows at epoch installs.
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(107)).unwrap();
    assert_identical(&trace, &PolicySpec::SieveStoreD { threshold: 5 }, 2_048);
    assert_identical(
        &trace,
        &PolicySpec::SieveStoreD { threshold: 10 },
        AMPLE_CAPACITY,
    );
}

#[test]
fn rand_sieve_blkd_is_shard_count_invariant() {
    // The coordinator owns the epoch counter and the seeded selection, so
    // the random discrete baseline is exactly reproducible too.
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(109)).unwrap();
    assert_identical(
        &trace,
        &PolicySpec::RandSieveBlkD {
            fraction: 0.05,
            seed: 0xB10C,
        },
        4_096,
    );
}

#[test]
fn day_snapshot_jsonl_is_byte_identical_across_shard_counts() {
    // The exporter's determinism contract: for a discrete policy the
    // day-boundary snapshot log has the same bytes whether it was emitted
    // online by the sequential engine or derived from any sharded run —
    // even under eviction pressure (small capacity forces epoch
    // overflow).
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(127)).unwrap();
    let spec = PolicySpec::SieveStoreD { threshold: 5 };
    let base = cfg(&trace, 2_048);
    let (sequential, online) =
        simulate_with_snapshots(&trace, spec.clone(), &base).expect("sequential run");
    assert_eq!(
        online.to_jsonl(),
        SnapshotLog::from_result(&sequential).to_jsonl(),
        "online emission must match post-hoc derivation"
    );
    assert_eq!(online.days.len(), sequential.days.len());
    for shards in SHARD_COUNTS {
        let sharded_cfg = base.clone().with_replay(ReplayMode::Sharded(shards));
        let (_, derived) =
            simulate_with_snapshots(&trace, spec.clone(), &sharded_cfg).expect("sharded run");
        assert_eq!(
            online.to_jsonl().as_bytes(),
            derived.to_jsonl().as_bytes(),
            "snapshot bytes diverged at {shards} shards"
        );
    }
}

/// The shard counts the ISSUE's SIEVE acceptance criteria pin.
const SIEVE_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn sieve_eviction_is_shard_count_invariant_with_ample_capacity() {
    // Same contract as the LRU-backed continuous policies: with SIEVE as
    // the replacement policy, the no-eviction regime is byte-identical
    // at any shard count, and one shard is identical unconditionally.
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(131)).unwrap();
    for spec in [
        PolicySpec::Aod,
        PolicySpec::Wmna,
        PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 12)),
    ] {
        let base = cfg(&trace, AMPLE_CAPACITY).with_eviction(EvictionPolicy::Sieve);
        let sequential = simulate(&trace, spec.clone(), &base).expect("sequential run");
        for shards in SIEVE_SHARD_COUNTS {
            let (sharded, stats) =
                simulate_sharded(&trace, spec.clone(), &base, shards).expect("sharded run");
            assert_eq!(
                sequential.days, sharded.days,
                "{spec:?} under SIEVE diverged at {shards} shards"
            );
            assert_eq!(stats.total_blocks(), sequential.total().accesses());
        }
    }
}

#[test]
fn sieve_eviction_matches_sequential_at_one_shard_under_pressure() {
    // One shard is the sequential semantics regardless of eviction
    // pressure: a small cache forces the SIEVE hand to actually evict,
    // and the single-worker sharded run must still match byte-for-byte.
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(137)).unwrap();
    let base = cfg(&trace, 2_048).with_eviction(EvictionPolicy::Sieve);
    for spec in [PolicySpec::Aod, PolicySpec::Wmna] {
        let sequential = simulate(&trace, spec.clone(), &base).expect("sequential run");
        let (sharded, _) = simulate_sharded(&trace, spec.clone(), &base, 1).expect("sharded run");
        assert_eq!(
            sequential.days, sharded.days,
            "{spec:?} under SIEVE diverged at one shard"
        );
        assert!(
            sequential.total().accesses() > 0,
            "trace must exercise the cache"
        );
    }
}

#[test]
fn day_snapshot_jsonl_is_byte_identical_under_sieve_eviction() {
    // Snapshot byte-equality, SIEVE edition: the exported day-boundary
    // JSONL must not depend on the shard count when the continuous cache
    // replaces with SIEVE (ample capacity — the continuous equality
    // regime; see module docs).
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(139)).unwrap();
    let base = cfg(&trace, AMPLE_CAPACITY).with_eviction(EvictionPolicy::Sieve);
    let spec = PolicySpec::Aod;
    let (_, online) = simulate_with_snapshots(&trace, spec.clone(), &base).expect("sequential run");
    for shards in SIEVE_SHARD_COUNTS {
        let sharded_cfg = base.clone().with_replay(ReplayMode::Sharded(shards));
        let (_, derived) =
            simulate_with_snapshots(&trace, spec.clone(), &sharded_cfg).expect("sharded run");
        assert_eq!(
            online.to_jsonl().as_bytes(),
            derived.to_jsonl().as_bytes(),
            "snapshot bytes under SIEVE diverged at {shards} shards"
        );
    }
}

#[test]
fn lru_and_sieve_eviction_agree_without_pressure_and_diverge_under_it() {
    // With no evictions the replacement policy is unobservable, so the
    // two eviction policies must report identical figures; under
    // pressure they are genuinely different policies and the appliance
    // must actually be dispatching on the configured one.
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(149)).unwrap();
    let ample_lru = cfg(&trace, AMPLE_CAPACITY);
    let ample_sieve = ample_lru.clone().with_eviction(EvictionPolicy::Sieve);
    let lru = simulate(&trace, PolicySpec::Aod, &ample_lru).expect("lru run");
    let sieve = simulate(&trace, PolicySpec::Aod, &ample_sieve).expect("sieve run");
    assert_eq!(lru.days, sieve.days, "no-eviction runs must agree");

    let tight_lru = cfg(&trace, 256);
    let tight_sieve = tight_lru.clone().with_eviction(EvictionPolicy::Sieve);
    let lru = simulate(&trace, PolicySpec::Aod, &tight_lru).expect("lru run");
    let sieve = simulate(&trace, PolicySpec::Aod, &tight_sieve).expect("sieve run");
    assert_ne!(
        lru.days, sieve.days,
        "a 256-block AOD cache must replace differently under LRU vs SIEVE"
    );
}

#[test]
fn sievestore_c_matches_with_ample_capacity() {
    // IMCT slot-slicing requires shards | imct_entries; 1 << 12 divides
    // by every count in SHARD_COUNTS.
    let trace = SyntheticTrace::new(EnsembleConfig::tiny(113)).unwrap();
    let spec = PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 12));
    assert_identical(&trace, &spec, AMPLE_CAPACITY);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random traces, every policy family, shards 1/2/4/8: per-day
    /// metrics are identical to the sequential engine.
    #[test]
    fn random_traces_replay_identically(
        trace_seed in 0u64..1_000_000,
        policy_idx in 0usize..4,
        threshold in 2u64..12,
    ) {
        let trace = SyntheticTrace::new(EnsembleConfig::tiny(trace_seed)).unwrap();
        let spec = match policy_idx {
            0 => PolicySpec::Aod,
            1 => PolicySpec::SieveStoreD { threshold },
            2 => PolicySpec::RandSieveBlkD { fraction: 0.02, seed: trace_seed ^ 0xFEED },
            _ => PolicySpec::SieveStoreC(
                TwoTierConfig::paper_default().with_imct_entries(1 << 12),
            ),
        };
        // Discrete policies tolerate eviction pressure; continuous ones
        // need the no-eviction regime for exact equality.
        let capacity = match spec {
            PolicySpec::SieveStoreD { .. } | PolicySpec::RandSieveBlkD { .. } => 4_096,
            _ => AMPLE_CAPACITY,
        };
        let base = cfg(&trace, capacity);
        let sequential = simulate(&trace, spec.clone(), &base).expect("sequential run");
        for shards in SHARD_COUNTS {
            let (sharded, _) =
                simulate_sharded(&trace, spec.clone(), &base, shards).expect("sharded run");
            prop_assert_eq!(
                &sequential.days,
                &sharded.days,
                "{:?} diverged at {} shards on trace seed {}",
                spec,
                shards,
                trace_seed
            );
        }
    }

    /// Occupancy (per-minute device load) also matches at one shard —
    /// the sharded path with a single worker is the sequential semantics.
    #[test]
    fn single_shard_occupancy_matches(trace_seed in 0u64..1_000_000) {
        let trace = SyntheticTrace::new(EnsembleConfig::tiny(trace_seed)).unwrap();
        let base = cfg(&trace, 4_096);
        let spec = PolicySpec::SieveStoreD { threshold: 5 };
        let sequential = simulate(&trace, spec.clone(), &base).expect("sequential run");
        let (sharded, _) =
            simulate_sharded(&trace, spec, &base, 1).expect("sharded run");
        prop_assert_eq!(sequential.days, sharded.days);
        prop_assert_eq!(
            sequential.occupancy.len_minutes(),
            sharded.occupancy.len_minutes()
        );
        for m in 0..sequential.occupancy.len_minutes() {
            let minute = sievestore_types::Minute::new(m as u32);
            prop_assert_eq!(
                sequential.occupancy.load(minute),
                sharded.occupancy.load(minute),
                "minute {} diverged",
                m
            );
        }
    }
}
