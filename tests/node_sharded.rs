//! Shared-nothing server integration: sharding must be semantically
//! transparent. A serial client sees byte-identical responses from the
//! single-lock and sharded servers under a deterministic policy, the
//! existing retry/breaker semantics survive unchanged, and a panicking
//! worker surfaces through `worker_panics()` without wedging shutdown.

use std::io;
use std::time::Duration;

use sievestore::PolicySpec;
use sievestore_node::{
    BackingStore, Block, ClientConfig, DataCache, FaultInjectingBacking, FaultPlan, MemBacking,
    NodeClient, NodeConfig, NodeMode, NodeServerBuilder, OpResult, PipedReply, PipedRequest,
    PipelinedClient, Reply, Request, RetryPolicy, WritePolicy,
};
use sievestore_sieve::TwoTierConfig;

fn block(fill: u8) -> [u8; 512] {
    [fill; 512]
}

/// Polls `cond` until it holds or a 5s deadline passes. The client can
/// observe a torn connection before the server thread's `catch_unwind`
/// finishes bookkeeping, so panic-counter asserts must wait.
fn wait_for(cond: impl Fn() -> bool, what: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        },
        ..ClientConfig::default()
    }
}

/// Deterministic mixed workload: returns (is_write, key) pairs covering
/// every shard, with rereads so hits accrue.
fn workload(ops: usize, keys: u64) -> Vec<(bool, u64)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..ops)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 32).is_multiple_of(3), state % keys)
        })
        .collect()
}

#[test]
fn sharded_round_trip_and_worker_gauges() {
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(2)
        .serve_sharded(
            MemBacking::new(),
            PolicySpec::Aod,
            64,
            WritePolicy::WriteThrough,
        )
        .expect("bind");
    assert_eq!(server.workers(), 2);
    assert_eq!(server.queue_depths().len(), 2);

    let mut client = NodeClient::connect(server.addr()).expect("connect");
    for key in 0..16u64 {
        client.write_block(key, &block(key as u8)).expect("write");
    }
    for key in 0..16u64 {
        let (data, hit) = client.read_block(key).expect("read");
        assert!(hit, "key {key} resident after write");
        assert_eq!(data[0], key as u8);
    }
    assert_eq!(server.live_connections(), 1);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.read_hits, 16, "stats aggregate across all shards");
    assert_eq!(stats.write_misses, 16);
    assert_eq!(stats.resident_blocks, 16);

    client.quit().expect("quit");
    server.shutdown();
}

/// The acceptance-level differential: with the deterministic
/// allocate-on-demand policy and no evictions, the sharded server must
/// answer every request byte-identically to the single-lock server —
/// same payloads, same hit bits, same final counters.
#[test]
fn sharded_matches_legacy_byte_for_byte_under_aod() {
    let legacy = {
        let cache =
            DataCache::new(MemBacking::new(), PolicySpec::Aod, 512).expect("valid appliance");
        NodeServerBuilder::new("127.0.0.1:0")
            .serve(cache)
            .expect("bind")
    };
    let sharded = NodeServerBuilder::new("127.0.0.1:0")
        .workers(4)
        .serve_sharded(
            MemBacking::new(),
            PolicySpec::Aod,
            512,
            WritePolicy::WriteThrough,
        )
        .expect("bind");

    let ops = workload(400, 64);
    let drive = |addr| -> Vec<(bool, [u8; 512])> {
        let mut client = NodeClient::connect(addr).expect("connect");
        let out = ops
            .iter()
            .map(|&(is_write, key)| {
                if is_write {
                    let hit = client.write_block(key, &block(key as u8)).expect("write");
                    (hit, block(key as u8))
                } else {
                    let (data, hit) = client.read_block(key).expect("read");
                    (hit, data)
                }
            })
            .collect();
        client.quit().expect("quit");
        out
    };

    let legacy_replies = drive(legacy.addr());
    let sharded_replies = drive(sharded.addr());
    for (i, (a, b)) in legacy_replies.iter().zip(&sharded_replies).enumerate() {
        assert_eq!(a.0, b.0, "hit bit diverged at op {i} ({:?})", ops[i]);
        assert_eq!(a.1, b.1, "payload diverged at op {i} ({:?})", ops[i]);
    }
    assert_eq!(legacy.stats(), sharded.stats(), "final counters identical");

    legacy.shutdown();
    sharded.shutdown();
}

/// Sieve policies keep per-shard admission state, so hit bits may differ
/// across shard counts — but the data plane must still be correct:
/// payloads identical to the single-lock server on every op.
#[test]
fn sharded_matches_legacy_payloads_under_sieve_policy() {
    let policy = || {
        PolicySpec::SieveStoreC(
            TwoTierConfig::paper_default()
                .with_imct_entries(1 << 10)
                .with_thresholds(2, 1),
        )
    };
    let legacy = {
        let cache = DataCache::new(MemBacking::new(), policy(), 256).expect("valid appliance");
        NodeServerBuilder::new("127.0.0.1:0")
            .serve(cache)
            .expect("bind")
    };
    let sharded = NodeServerBuilder::new("127.0.0.1:0")
        .workers(3)
        .serve_sharded(MemBacking::new(), policy(), 256, WritePolicy::WriteThrough)
        .expect("bind");

    let ops = workload(600, 96);
    let drive = |addr| -> Vec<[u8; 512]> {
        let mut client = NodeClient::connect(addr).expect("connect");
        let out = ops
            .iter()
            .map(|&(is_write, key)| {
                if is_write {
                    client.write_block(key, &block(key as u8)).expect("write");
                    block(key as u8)
                } else {
                    client.read_block(key).expect("read").0
                }
            })
            .collect();
        client.quit().expect("quit");
        out
    };

    let legacy_replies = drive(legacy.addr());
    let sharded_replies = drive(sharded.addr());
    for (i, (a, b)) in legacy_replies.iter().zip(&sharded_replies).enumerate() {
        assert_eq!(a, b, "payload diverged at op {i} ({:?})", ops[i]);
    }

    legacy.shutdown();
    sharded.shutdown();
}

/// The existing client fault semantics — bounded retries, per-worker
/// breaker trip into degraded pass-through, probe-back recovery — hold
/// against the sharded server. Hammering one key keeps every fault on a
/// single shard so the trip threshold behaves exactly as on the
/// single-lock server.
#[test]
fn sharded_preserves_retry_and_breaker_semantics() {
    let backing = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0xB4));
    let handle = backing.handle();
    let config = NodeConfig {
        breaker_threshold: 3,
        breaker_cooldown: 4,
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(2)
        .config(config)
        .serve_sharded(backing, PolicySpec::Aod, 64, WritePolicy::WriteThrough)
        .expect("bind");

    let mut client = NodeClient::connect_with(server.addr(), fast_client()).expect("connect");
    client.write_block(0, &block(0x42)).expect("seed");

    // One transient fault on an uncached key (cache hits never reach
    // the backing): absorbed by a client retry, breaker stays closed.
    handle.fail_next(1);
    client.read_block(100).expect("retried read");
    assert!(client.retries() >= 1);
    assert_eq!(server.mode(), NodeMode::Healthy);

    // Sustained faults: retried reads of one uncached key keep every
    // failure on a single shard, tripping its breaker; the seeded key
    // still serves correct bytes (from cache or pass-through).
    handle.fail_next(3);
    client.read_block(50).expect("degraded read");
    assert_eq!(server.mode(), NodeMode::Degraded, "worst-rank mode");
    let (data, _) = client.read_block(0).expect("read during degradation");
    assert_eq!(data[0], 0x42);

    // Spend the tripped shard's cooldown; the probe then finds a healed
    // backing and closes its breaker.
    for _ in 0..8 {
        client.read_block(50).expect("recovery read");
    }
    assert_eq!(server.mode(), NodeMode::Healthy);

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn pipelined_client_saturates_sharded_server() {
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(3)
        .serve_sharded(
            MemBacking::new(),
            PolicySpec::Aod,
            256,
            WritePolicy::WriteThrough,
        )
        .expect("bind");

    let mut client = PipelinedClient::connect(server.addr(), 16).expect("connect");
    let mut done = Vec::new();
    for key in 0..96u64 {
        done.extend(client.write(key, &block(key as u8)).expect("write"));
    }
    for key in 0..96u64 {
        done.extend(client.read(key).expect("read"));
    }
    done.extend(client.drain().expect("drain"));
    assert_eq!(done.len(), 192);

    let mut read_hits = 0u64;
    for c in done {
        match c.result {
            Ok(OpResult::Read { hit, data }) => {
                assert_eq!(data[0], c.key as u8, "payload for key {}", c.key);
                read_hits += hit as u64;
            }
            Ok(OpResult::Write { .. }) => {}
            Err(e) => panic!("op on key {} failed: {e}", c.key),
        }
    }
    assert_eq!(read_hits, 96, "all reads hit after the write pass");
    assert_eq!(server.stats().read_hits, 96);

    client.quit().expect("quit");
    server.shutdown();
}

/// A backing store whose reads of one key blow up, for the satellite (f)
/// regression: worker panics must be counted, carry their message, and
/// never wedge `shutdown()`.
struct PanickingBacking {
    inner: MemBacking,
    panic_key: u64,
}

impl BackingStore for PanickingBacking {
    fn read_block(&self, key: u64) -> io::Result<Block> {
        assert!(key != self.panic_key, "intentional backing panic");
        self.inner.read_block(key)
    }

    fn write_block(&self, key: u64, data: &Block) -> io::Result<()> {
        self.inner.write_block(key, data)
    }
}

#[test]
fn legacy_server_survives_worker_panic_and_shuts_down() {
    let backing = PanickingBacking {
        inner: MemBacking::new(),
        panic_key: 7,
    };
    let cache = DataCache::new(backing, PolicySpec::Aod, 64).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");

    let no_retry = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let mut client = NodeClient::connect_with(server.addr(), no_retry).expect("connect");
    client.write_block(1, &block(1)).expect("healthy write");
    let err = client
        .read_block(7)
        .expect_err("panicking read kills the connection");
    assert!(err.is_transient(), "client sees a transport error: {err}");

    wait_for(|| server.worker_panics() == 1, "panic ledger update");
    let msg = server
        .first_panic_message()
        .expect("panic message captured");
    assert!(msg.contains("intentional backing panic"), "got {msg:?}");

    // The node keeps serving other connections after one died.
    let mut again = NodeClient::connect_with(server.addr(), no_retry).expect("reconnect");
    let (data, hit) = again.read_block(1).expect("read after panic");
    assert!(hit);
    assert_eq!(data[0], 1);
    again.quit().expect("quit");

    server.shutdown();
}

#[test]
fn sharded_server_propagates_worker_panic_and_shuts_down() {
    let backing = PanickingBacking {
        inner: MemBacking::new(),
        panic_key: 7,
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(2)
        .serve_sharded(backing, PolicySpec::Aod, 64, WritePolicy::WriteThrough)
        .expect("bind");

    let no_retry = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let mut client = NodeClient::connect_with(server.addr(), no_retry).expect("connect");
    client.write_block(1, &block(1)).expect("healthy write");
    let err = client
        .read_block(7)
        .expect_err("panicking shard tears the node down");
    assert!(err.is_transient(), "client sees a transport error: {err}");

    wait_for(|| server.worker_panics() == 1, "panic ledger update");
    let msg = server
        .first_panic_message()
        .expect("panic message captured");
    assert!(msg.contains("intentional backing panic"), "got {msg:?}");

    // A dead shard means a slice of the key space is unreachable, so the
    // whole node stops; shutdown must return promptly, not hang.
    server.shutdown();
}

/// Regression: a plain flush in ordering slot 0 and a piped flush with
/// corr 0 on the same connection produce colliding (conn, slot, corr)
/// keys; fan-out aggregation must match the full op token or one flush
/// absorbs completions belonging to the other and the counts cross.
#[test]
fn concurrent_plain_and_piped_flushes_aggregate_separately() {
    use std::io::{BufReader, BufWriter, Write};
    use std::net::TcpStream;

    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(3)
        .serve_sharded(
            MemBacking::new(),
            PolicySpec::Aod,
            64,
            WritePolicy::WriteBack,
        )
        .expect("bind");

    // Dirty one frame per key across every shard: read to allocate,
    // write-hit to dirty.
    let mut client = NodeClient::connect(server.addr()).expect("connect");
    for key in 0..12u64 {
        client.read_block(key).expect("prime residency");
        client.write_block(key, &block(key as u8)).expect("dirty");
    }
    client.quit().expect("quit");

    // Same connection, same batch: a plain flush (first request, so
    // ordering slot 0) and a piped flush with corr 0.
    let stream = TcpStream::connect(server.addr()).expect("connect raw");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let mut batch = Vec::new();
    Request::Flush.encode_into(&mut batch);
    PipedRequest {
        corr: 0,
        request: Request::Flush,
    }
    .encode_into(&mut batch);
    writer.write_all(&batch).expect("write batch");
    writer.flush().expect("flush batch");

    // The plain flush fanned out first (rings are FIFO), so it collects
    // every dirty frame; the piped flush chasing it finds nothing left.
    let plain = Reply::decode(&mut reader).expect("plain flush reply");
    assert!(
        matches!(plain, Reply::Flush { flushed: 12 }),
        "plain flush must aggregate all 12 dirty frames, got {plain:?}"
    );
    let piped = PipedReply::decode(&mut reader).expect("piped flush reply");
    assert_eq!(piped.corr, 0);
    assert!(
        matches!(piped.reply, Reply::Flush { flushed: 0 }),
        "piped flush must not steal the plain flush's completions, got {:?}",
        piped.reply
    );

    // The connection stays serviceable afterwards.
    let mut probe = Vec::new();
    PipedRequest {
        corr: 9,
        request: Request::Read { key: 3 },
    }
    .encode_into(&mut probe);
    writer.write_all(&probe).expect("write probe");
    writer.flush().expect("flush probe");
    let reply = PipedReply::decode(&mut reader).expect("probe reply");
    assert_eq!(reply.corr, 9);
    assert!(matches!(reply.reply, Reply::Read { hit: true, .. }));

    Request::Quit.encode(&mut writer).expect("quit");
    writer.flush().ok();
    server.shutdown();
}

/// Regression: a client that pipelines requests but never reads replies
/// must not grow the server's write buffer without bound or pin the
/// connection forever — backpressure stops ingesting past the backlog
/// cap and the idle timeout reaps the stalled connection.
#[test]
fn stalled_reader_with_write_backlog_is_reaped() {
    use std::io::Write;
    use std::net::TcpStream;

    let config = NodeConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .workers(1)
        .config(config)
        .serve_sharded(
            MemBacking::new(),
            PolicySpec::Aod,
            64,
            WritePolicy::WriteThrough,
        )
        .expect("bind");

    // Pipeline far more reply bytes than the kernel socket buffers can
    // absorb and never read any of them. The writer gets its own
    // thread: once the server stops ingesting (backpressure) and then
    // kills the connection, the writes fail — that is expected.
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let writer_stream = stream.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        let mut s = writer_stream;
        let mut frame = Vec::new();
        for corr in 0..32_000u32 {
            frame.clear();
            PipedRequest {
                corr,
                request: Request::Read { key: 1 },
            }
            .encode_into(&mut frame);
            if s.write_all(&frame).is_err() {
                break;
            }
        }
    });

    wait_for(
        || server.live_connections() == 0,
        "stalled connection reaped",
    );
    writer.join().expect("writer thread");
    drop(stream);
    server.shutdown();
}
