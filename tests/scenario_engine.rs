//! Differential and property tests for the adversarial scenario engine.
//!
//! The engine's contract (see `sievestore_trace::scenario`):
//!
//! * a scenarioed stream is **bit-identical for a given seed** across
//!   chunk sizes, pipeline depths, and spill on/off — pinned by golden
//!   digests for all four scenario families and by a property over
//!   random stream shapes;
//! * scenarios never change timestamps or day partitioning, and every
//!   transformed request stays within its volume's capacity;
//! * replay figures are engine-invariant under every scenario:
//!   sharded(N) reproduces the sequential metrics *and* day-snapshot
//!   bytes exactly, N ∈ {1, 2, 4}, for discrete and continuous policies
//!   under both eviction policies;
//! * invalid scenarios are rejected up front by the sim entry points.

use std::path::PathBuf;

use proptest::prelude::*;
use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    simulate, simulate_server, simulate_sharded, EvictionPolicy, SimConfig, SnapshotLog,
};
use sievestore_trace::{
    CompiledScenario, EnsembleConfig, ScenarioConfig, ScenarioStage, StreamMsg, SyntheticTrace,
    TraceStreamConfig,
};
use sievestore_types::{mix64, Day, Request, RequestKind};

/// Large enough that no policy under the tiny traces ever evicts, so
/// continuous policies are also shard-count invariant (see
/// `tests/sharded_replay.rs` for the regime argument).
const AMPLE_CAPACITY: usize = 1 << 20;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Fixed scenario seed for the golden digests.
const SCENARIO_SEED: u64 = 0x5C2E_0AD5;

fn fold_request(acc: u64, r: &Request) -> u64 {
    let mut acc = mix64(acc ^ r.timestamp.as_u64());
    acc = mix64(acc ^ u64::from(r.start.server.index()));
    acc = mix64(acc ^ u64::from(r.start.volume.index()));
    acc = mix64(acc ^ r.start.block);
    acc = mix64(acc ^ u64::from(r.len_blocks));
    acc = mix64(acc ^ matches!(r.kind, RequestKind::Write) as u64);
    mix64(acc ^ r.response_time.as_u64())
}

fn digest<'a>(requests: impl IntoIterator<Item = &'a Request>) -> u64 {
    requests.into_iter().fold(0, fold_request)
}

fn drain(trace: &SyntheticTrace, config: TraceStreamConfig) -> (Vec<Day>, u64) {
    let mut stream = trace.stream(config);
    let mut days = Vec::new();
    let mut acc = 0u64;
    while let Some(msg) = stream.next_msg() {
        match msg {
            StreamMsg::StartDay(day) => days.push(day),
            StreamMsg::Chunk(chunk) => {
                acc = chunk.iter().fold(acc, fold_request);
                stream.recycle(chunk);
            }
            StreamMsg::Failed(e) => panic!("stream failed: {e}"),
        }
    }
    (days, acc)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sievestore-scenario-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_trace(seed: u64) -> SyntheticTrace {
    SyntheticTrace::new(EnsembleConfig::tiny(seed)).expect("tiny trace")
}

fn cfg(trace: &SyntheticTrace) -> SimConfig {
    SimConfig::paper_16gb(trace.config().scale.denominator()).with_capacity_blocks(AMPLE_CAPACITY)
}

/// The four scenario families over the tiny ensemble (2 servers, 3
/// days): each disrupts from/on day 1, so day 0 is always steady.
fn scenarios() -> Vec<(&'static str, ScenarioConfig)> {
    let new = || ScenarioConfig::new(SCENARIO_SEED);
    vec![
        (
            "flash_crowd",
            new().with_stage(ScenarioStage::FlashCrowd {
                day: 1,
                start_minute: 600,
                duration_minutes: 120,
                amplification: 4,
                crowd_fraction: 0.25,
            }),
        ),
        (
            "hot_set_inversion",
            new().with_stage(ScenarioStage::HotSetInversion { from_day: 1 }),
        ),
        (
            "failover",
            new().with_stage(ScenarioStage::Failover {
                from_day: 1,
                server: 0,
            }),
        ),
        (
            "churn_burst",
            new().with_stage(ScenarioStage::ChurnBurst {
                day: 1,
                start_minute: 0,
                duration_minutes: 24 * 60,
                fraction: 0.4,
            }),
        ),
    ]
}

fn materialized(trace: &SyntheticTrace) -> Vec<Request> {
    let mut all = Vec::new();
    for d in 0..trace.days() {
        all.extend(trace.day_requests(Day::new(d)));
    }
    all
}

/// Reference transform of the materialized merge — the sequence every
/// stream shape must reproduce.
fn reference(trace: &SyntheticTrace, scenario: &ScenarioConfig) -> Vec<Request> {
    CompiledScenario::compile(scenario, trace.config())
        .expect("valid scenario")
        .apply_all(&materialized(trace))
}

/// Golden digests for `EnsembleConfig::tiny(42)` under `SCENARIO_SEED`,
/// in `scenarios()` order. If one of these moves, the scenario engine's
/// output changed for everyone — including any committed degradation
/// baselines — and the change must be deliberate.
const GOLDEN_TINY_42: [(&str, u64); 4] = [
    ("flash_crowd", 0xCD2B_5D38_0705_A047),
    ("hot_set_inversion", 0x3B7D_5DBD_3656_CCA4),
    ("failover", 0xF318_1E53_2DE6_3CD0),
    ("churn_burst", 0xDCE1_322C_D028_14F1),
];

/// Every scenario stream matches its reference transform for every
/// stream shape — in-memory and spilled — and the committed golden
/// digest.
#[test]
fn scenario_streams_match_reference_and_golden_digests() {
    let trace = tiny_trace(42);
    let expected_days: Vec<Day> = (0..trace.days()).map(Day::new).collect();
    let spill_root = scratch_dir("golden");
    for (i, (name, scenario)) in scenarios().into_iter().enumerate() {
        let expect = digest(&reference(&trace, &scenario));
        let shapes: Vec<(&str, TraceStreamConfig)> = vec![
            ("default", TraceStreamConfig::default()),
            (
                "chunk-7",
                TraceStreamConfig::default()
                    .with_chunk_requests(7)
                    .with_depth(1),
            ),
            (
                "spill",
                TraceStreamConfig::default()
                    .with_chunk_requests(33)
                    .with_spill_dir(spill_root.join(name)),
            ),
        ];
        for (shape_name, shape) in shapes {
            let (days, got) = drain(&trace, shape.with_scenario(scenario.clone()));
            assert_eq!(days, expected_days, "{name}/{shape_name}: day markers");
            assert_eq!(got, expect, "{name}/{shape_name}: sequence diverged");
        }
        let (golden_name, golden) = GOLDEN_TINY_42[i];
        assert_eq!(golden_name, name, "golden table order");
        assert_eq!(
            expect, golden,
            "{name}: golden digest moved — deliberate generator change?"
        );
    }
    std::fs::remove_dir_all(&spill_root).ok();
}

/// Scenario transforms preserve day partitioning, timestamps, and
/// volume capacities, and amplification only ever adds requests.
#[test]
fn scenario_streams_preserve_days_and_capacities() {
    let trace = tiny_trace(42);
    let config = trace.config();
    let caps: Vec<Vec<u64>> = config
        .servers
        .iter()
        .map(|s| {
            s.volumes
                .iter()
                .map(|v| v.blocks(config.scale).max(4096))
                .collect()
        })
        .collect();
    let base_len = materialized(&trace).len();
    for (name, scenario) in scenarios() {
        let requests: Vec<Request> = trace
            .stream(TraceStreamConfig::default().with_scenario(scenario))
            .requests()
            .collect();
        assert!(
            requests.len() >= base_len,
            "{name}: transform dropped requests"
        );
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].timestamp <= w[1].timestamp),
            "{name}: timestamps must stay non-decreasing"
        );
        for r in &requests {
            let cap = caps[r.start.server.as_usize()][r.start.volume.as_usize()];
            assert!(
                r.start.block + u64::from(r.len_blocks) <= cap,
                "{name}: {r} exceeds volume capacity {cap}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any stream shape — chunk size, pipeline depth, spill on/off —
    /// over any scenario family and seed reproduces the reference
    /// transform byte-for-byte.
    #[test]
    fn scenario_stream_is_shape_invariant(
        scenario_idx in 0usize..4,
        scenario_seed in any::<u64>(),
        chunk in 1usize..3000,
        depth in 1usize..5,
        spill in any::<bool>(),
    ) {
        let trace = tiny_trace(7);
        let (name, scenario) = scenarios().swap_remove(scenario_idx);
        let scenario = ScenarioConfig::new(scenario_seed)
            .with_stage(scenario.stages()[0]);
        let expect = digest(&reference(&trace, &scenario));
        let mut shape = TraceStreamConfig::default()
            .with_chunk_requests(chunk)
            .with_depth(depth)
            .with_scenario(scenario);
        let spill_dir = scratch_dir("prop");
        if spill {
            shape = shape.with_spill_dir(&spill_dir);
        }
        let (_, got) = drain(&trace, shape);
        std::fs::remove_dir_all(&spill_dir).ok();
        prop_assert_eq!(got, expect, "{} diverged (chunk {}, depth {}, spill {})",
            name, chunk, depth, spill);
    }
}

/// The engine-invariance matrix under adversity: for each scenario,
/// sharded(1/2/4) must reproduce the sequential per-day metrics and the
/// exported day-snapshot bytes exactly — discrete and continuous
/// policies, LRU and SIEVE eviction.
#[test]
fn sharded_replay_matches_sequential_under_every_scenario() {
    let trace = tiny_trace(11);
    let specs: Vec<PolicySpec> = vec![
        PolicySpec::SieveStoreD { threshold: 10 },
        PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 14)),
    ];
    for (name, scenario) in scenarios() {
        for eviction in [EvictionPolicy::Lru, EvictionPolicy::Sieve] {
            let base = cfg(&trace)
                .with_eviction(eviction)
                .with_scenario(scenario.clone());
            for spec in &specs {
                let sequential = simulate(&trace, spec.clone(), &base).expect("sequential");
                let sequential_jsonl = SnapshotLog::from_result(&sequential).to_jsonl();
                for shards in SHARD_COUNTS {
                    let (sharded, stats) =
                        simulate_sharded(&trace, spec.clone(), &base, shards).expect("sharded");
                    assert_eq!(
                        sequential.days, sharded.days,
                        "{name}: {spec:?} under {eviction} diverged at {shards} shards"
                    );
                    assert_eq!(
                        sequential_jsonl,
                        SnapshotLog::from_result(&sharded).to_jsonl(),
                        "{name}: {spec:?} under {eviction}: snapshot bytes diverged at {shards} shards"
                    );
                    assert_eq!(
                        stats.total_blocks(),
                        sequential.total().accesses(),
                        "{name}: routing dropped blocks at {shards} shards"
                    );
                }
            }
        }
    }
}

/// A disruption must actually disrupt: each scenario changes the
/// replayed figures relative to the steady-state run on the same trace.
#[test]
fn every_scenario_changes_the_replay_figures() {
    let trace = tiny_trace(11);
    let spec = PolicySpec::SieveStoreD { threshold: 10 };
    let steady = simulate(&trace, spec.clone(), &cfg(&trace)).expect("steady");
    for (name, scenario) in scenarios() {
        let run = simulate(&trace, spec.clone(), &cfg(&trace).with_scenario(scenario))
            .expect("scenario run");
        assert_ne!(
            steady.days, run.days,
            "{name}: scenario replay is indistinguishable from steady state"
        );
        // Day 0 precedes every disruption, so its access totals agree.
        assert_eq!(
            steady.days[0].accesses(),
            run.days[0].accesses(),
            "{name}: day 0 must be untouched"
        );
    }
}

/// Sim entry points validate scenarios up front and reject the
/// combinations the engine cannot replay faithfully.
#[test]
fn invalid_scenarios_are_rejected_with_errors_not_panics() {
    let trace = tiny_trace(5);
    // Failover target out of range for the 2-server tiny ensemble.
    let bad = ScenarioConfig::new(1).with_stage(ScenarioStage::Failover {
        from_day: 1,
        server: 9,
    });
    assert!(bad.validate(trace.config()).is_err());
    let err = simulate(&trace, PolicySpec::Aod, &cfg(&trace).with_scenario(bad))
        .expect_err("out-of-range failover must not simulate");
    assert!(err.to_string().contains("out of range"), "{err}");
    // Cross-server stages cannot replay a single server's slice.
    let failover = ScenarioConfig::new(1).with_stage(ScenarioStage::Failover {
        from_day: 1,
        server: 0,
    });
    let err = simulate_server(
        &trace,
        1,
        PolicySpec::Aod,
        &cfg(&trace).with_scenario(failover),
    )
    .expect_err("failover over a single-server slice must be rejected");
    assert!(err.to_string().contains("single server"), "{err}");
}
