//! Network integration: the appliance served over TCP must behave like a
//! correct, sieving block cache under concurrent clients.

use std::collections::HashMap;
use std::thread;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore::PolicySpec;
use sievestore_node::{DataCache, MemBacking, NodeClient, NodeServer};
use sievestore_sieve::TwoTierConfig;

fn block(fill: u8) -> [u8; 512] {
    [fill; 512]
}

#[test]
fn single_client_read_write_and_stats() {
    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64).expect("valid appliance");
    let server = NodeServer::spawn("127.0.0.1:0", cache).expect("bind ephemeral port");
    let mut client = NodeClient::connect(server.addr()).expect("connect");

    // Fresh blocks read as zeroes and miss.
    let (data, hit) = client.read_block(5).expect("read");
    assert_eq!(data, block(0));
    assert!(!hit);

    // Write-through, then hit.
    let hit = client.write_block(5, &block(0xC3)).expect("write");
    assert!(hit, "AOD allocated on the read miss, so the write hits");
    let (data, hit) = client.read_block(5).expect("read");
    assert_eq!(data, block(0xC3));
    assert!(hit);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.read_hits, 1);
    assert_eq!(stats.read_misses, 1);
    assert_eq!(stats.write_hits, 1);
    assert!(stats.resident_blocks >= 1);
    assert!(stats.hit_ratio() > 0.5);

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn sieved_node_filters_cold_scans() {
    let policy = PolicySpec::SieveStoreC(
        TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(3, 2),
    );
    let cache = DataCache::new(MemBacking::new(), policy, 256).expect("valid appliance");
    let server = NodeServer::spawn("127.0.0.1:0", cache).expect("bind");
    let mut client = NodeClient::connect(server.addr()).expect("connect");

    // A one-touch cold scan: nothing earns a frame.
    for key in 0..500u64 {
        let (_, hit) = client.read_block(key).expect("read");
        assert!(!hit, "cold block {key} must miss");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.allocation_writes, 0,
        "one-touch scan must not allocate"
    );

    // A hot block earns its frame after repeated misses, then hits.
    let mut first_hit_at = None;
    for i in 0..12 {
        let (_, hit) = client.read_block(9_999).expect("read");
        if hit {
            first_hit_at = Some(i);
            break;
        }
    }
    assert!(first_hit_at.is_some(), "hot block never started hitting");

    client.quit().expect("quit");
    let final_stats = server.stats();
    assert!(final_stats.allocation_writes >= 1);
    server.shutdown();
}

#[test]
fn concurrent_clients_never_see_stale_data() {
    // Each client owns a disjoint key range, hammers it with writes and
    // reads, and checks every read against its own shadow copy.
    let cache =
        DataCache::new(MemBacking::new(), PolicySpec::Aod, 1 << 10).expect("valid appliance");
    let server = NodeServer::spawn("127.0.0.1:0", cache).expect("bind");
    let addr = server.addr();

    let mut handles = Vec::new();
    for worker in 0..4u64 {
        handles.push(thread::spawn(move || {
            let mut client = NodeClient::connect(addr).expect("connect");
            let mut shadow: HashMap<u64, [u8; 512]> = HashMap::new();
            let mut rng = SmallRng::seed_from_u64(worker);
            let base = worker * 1_000;
            for _ in 0..400 {
                let key = base + rng.random_range(0..50u64);
                if rng.random::<bool>() {
                    let fill = rng.random::<u8>();
                    client.write_block(key, &block(fill)).expect("write");
                    shadow.insert(key, block(fill));
                } else {
                    let (data, _) = client.read_block(key).expect("read");
                    let expect = shadow.get(&key).copied().unwrap_or(block(0));
                    assert_eq!(data, expect, "worker {worker} saw stale key {key}");
                }
            }
            client.quit().expect("quit");
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    let stats = server.stats();
    assert_eq!(stats.accesses(), 4 * 400);
    server.shutdown();
}

#[test]
fn write_back_node_flushes_over_the_wire() {
    use sievestore_node::WritePolicy;

    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64)
        .expect("valid appliance")
        .with_write_policy(WritePolicy::WriteBack);
    let server = NodeServer::spawn("127.0.0.1:0", cache).expect("bind");
    let mut client = NodeClient::connect(server.addr()).expect("connect");

    // Prime residency, then dirty the frames with write hits.
    for key in 0..5u64 {
        client.read_block(key).expect("read");
        client.write_block(key, &block(key as u8 + 1)).expect("write");
    }
    let flushed = client.flush().expect("flush");
    assert_eq!(flushed, 5, "all dirtied frames flush");
    assert_eq!(client.flush().expect("flush"), 0, "second flush is empty");
    // Data survives the flush.
    let (data, _) = client.read_block(3).expect("read");
    assert_eq!(data, block(4));

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn server_survives_malformed_frames() {
    use std::io::Write as _;

    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).expect("valid appliance");
    let server = NodeServer::spawn("127.0.0.1:0", cache).expect("bind");

    // A raw connection sends garbage; the server replies with an error
    // frame (or closes) without taking the whole node down.
    {
        let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&[0xFF; 64]).expect("send garbage");
        // Whatever happens to this connection, the node must still serve:
    }
    let mut client = NodeClient::connect(server.addr()).expect("connect after garbage");
    client.write_block(1, &block(1)).expect("write");
    let (data, _) = client.read_block(1).expect("read");
    assert_eq!(data, block(1));
    client.quit().expect("quit");
    server.shutdown();
}
