//! Network integration: the appliance served over TCP must behave like a
//! correct, sieving block cache under concurrent clients — and keep
//! serving correct data while its backing store misbehaves.
//!
use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sievestore::PolicySpec;
use sievestore_node::{
    ClientConfig, DataCache, FaultInjectingBacking, FaultPlan, FileBacking, MemBacking, NodeClient,
    NodeConfig, NodeMode, NodeServerBuilder, RetryPolicy, WritePolicy,
};
use sievestore_sieve::TwoTierConfig;
use sievestore_types::NodeError;

fn block(fill: u8) -> [u8; 512] {
    [fill; 512]
}

/// A fast deterministic retry schedule for fault tests.
fn fast_client() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        },
        ..ClientConfig::default()
    }
}

#[test]
fn single_client_read_write_and_stats() {
    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind ephemeral port");
    let mut client = NodeClient::connect(server.addr()).expect("connect");

    // Fresh blocks read as zeroes and miss.
    let (data, hit) = client.read_block(5).expect("read");
    assert_eq!(data, block(0));
    assert!(!hit);

    // Write-through, then hit.
    let hit = client.write_block(5, &block(0xC3)).expect("write");
    assert!(hit, "AOD allocated on the read miss, so the write hits");
    let (data, hit) = client.read_block(5).expect("read");
    assert_eq!(data, block(0xC3));
    assert!(hit);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.read_hits, 1);
    assert_eq!(stats.read_misses, 1);
    assert_eq!(stats.write_hits, 1);
    assert!(stats.resident_blocks >= 1);
    assert!(stats.hit_ratio() > 0.5);

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn sieved_node_filters_cold_scans() {
    let policy = PolicySpec::SieveStoreC(
        TwoTierConfig::paper_default()
            .with_imct_entries(1 << 12)
            .with_thresholds(3, 2),
    );
    let cache = DataCache::new(MemBacking::new(), policy, 256).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");
    let mut client = NodeClient::connect(server.addr()).expect("connect");

    // A one-touch cold scan: nothing earns a frame.
    for key in 0..500u64 {
        let (_, hit) = client.read_block(key).expect("read");
        assert!(!hit, "cold block {key} must miss");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.allocation_writes, 0,
        "one-touch scan must not allocate"
    );

    // A hot block earns its frame after repeated misses, then hits.
    let mut first_hit_at = None;
    for i in 0..12 {
        let (_, hit) = client.read_block(9_999).expect("read");
        if hit {
            first_hit_at = Some(i);
            break;
        }
    }
    assert!(first_hit_at.is_some(), "hot block never started hitting");

    client.quit().expect("quit");
    let final_stats = server.stats();
    assert!(final_stats.allocation_writes >= 1);
    server.shutdown();
}

#[test]
fn concurrent_clients_never_see_stale_data() {
    // Each client owns a disjoint key range, hammers it with writes and
    // reads, and checks every read against its own shadow copy.
    let cache =
        DataCache::new(MemBacking::new(), PolicySpec::Aod, 1 << 10).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");
    let addr = server.addr();

    let mut handles = Vec::new();
    for worker in 0..4u64 {
        handles.push(thread::spawn(move || {
            let mut client = NodeClient::connect(addr).expect("connect");
            let mut shadow: HashMap<u64, [u8; 512]> = HashMap::new();
            let mut rng = SmallRng::seed_from_u64(worker);
            let base = worker * 1_000;
            for _ in 0..400 {
                let key = base + rng.random_range(0..50u64);
                if rng.random::<bool>() {
                    let fill = rng.random::<u8>();
                    client.write_block(key, &block(fill)).expect("write");
                    shadow.insert(key, block(fill));
                } else {
                    let (data, _) = client.read_block(key).expect("read");
                    let expect = shadow.get(&key).copied().unwrap_or(block(0));
                    assert_eq!(data, expect, "worker {worker} saw stale key {key}");
                }
            }
            client.quit().expect("quit");
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    let stats = server.stats();
    assert_eq!(stats.accesses(), 4 * 400);
    server.shutdown();
}

#[test]
fn write_back_node_flushes_over_the_wire() {
    use sievestore_node::WritePolicy;

    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 64)
        .expect("valid appliance")
        .with_write_policy(WritePolicy::WriteBack);
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");
    let mut client = NodeClient::connect(server.addr()).expect("connect");

    // Prime residency, then dirty the frames with write hits.
    for key in 0..5u64 {
        client.read_block(key).expect("read");
        client
            .write_block(key, &block(key as u8 + 1))
            .expect("write");
    }
    let flushed = client.flush().expect("flush");
    assert_eq!(flushed, 5, "all dirtied frames flush");
    assert_eq!(client.flush().expect("flush"), 0, "second flush is empty");
    // Data survives the flush.
    let (data, _) = client.read_block(3).expect("read");
    assert_eq!(data, block(4));

    client.quit().expect("quit");
    server.shutdown();
}

/// The acceptance scenario: one node over a fault-injected ensemble,
/// driven deterministically (fixed fault schedules, no probabilities)
/// through transient errors, sustained errors and recovery.
#[test]
fn node_survives_transient_faults_degrades_and_recovers() {
    let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0xFA07));
    let handle = faulty.handle();
    let cache = DataCache::new(faulty, PolicySpec::Aod, 64).expect("valid appliance");
    let config = NodeConfig {
        breaker_threshold: 3,
        breaker_cooldown: 4,
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)
        .expect("bind");
    let mut client = NodeClient::connect_with(server.addr(), fast_client()).expect("connect");

    // Baseline: a healthy write-through pass lands data on the ensemble.
    client.write_block(1, &block(0x11)).expect("healthy write");
    assert_eq!(client.stats().expect("stats").mode, NodeMode::Healthy);

    // --- Phase 1: a transient error is absorbed by one client retry. ---
    handle.fail_next(1);
    let (data, _) = client.read_block(2).expect("retried read succeeds");
    assert_eq!(data, block(0), "fresh block reads as zeroes after retry");
    assert_eq!(client.retries(), 1, "exactly one retry absorbed the fault");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.mode,
        NodeMode::Healthy,
        "one blip never trips the breaker"
    );
    assert_eq!(stats.degraded_reads, 0);

    // --- Phase 2: sustained errors trip the breaker into degraded mode. ---
    handle.fail_next(3); // exactly the breaker threshold
                         // Attempts 1-3 fail on the cache path (tripping the breaker); attempt
                         // 4 is served by degraded pass-through against the healed ensemble.
    let (data, hit) = client.read_block(3).expect("degraded read succeeds");
    assert_eq!(data, block(0));
    assert!(!hit, "degraded pass-through never reports cache hits");
    assert_eq!(
        client.retries(),
        4,
        "three more retries tripped the breaker"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats.mode, NodeMode::Degraded);
    assert_eq!(stats.degraded_reads, 1);
    // Snapshot the allocation counter now that the breaker is open (the
    // failing attempts above already registered in policy metadata).
    let alloc_before = stats.allocation_writes;

    // Degraded mode still serves correct data (written while healthy)...
    let (data, _) = client.read_block(1).expect("degraded read of old data");
    assert_eq!(data, block(0x11), "degraded reads serve ensemble truth");
    // ...accepts writes...
    client.write_block(7, &block(0x77)).expect("degraded write");
    let (data, _) = client.read_block(7).expect("read own degraded write");
    assert_eq!(data, block(0x77));
    // ...and never allocates frames.
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.allocation_writes, alloc_before,
        "allocation is frozen while degraded"
    );
    assert_eq!(stats.degraded_reads, 3);
    assert_eq!(stats.degraded_writes, 1);
    // The cooldown (4 requests) is spent: the breaker is about to probe.
    assert_eq!(stats.mode, NodeMode::Probing);

    // --- Phase 3: the probe succeeds and the node heals. ---
    let (data, hit) = client.read_block(1).expect("probe request");
    assert_eq!(data, block(0x11));
    assert!(hit, "block 1 is still resident from the healthy phase");
    assert_eq!(client.stats().expect("stats").mode, NodeMode::Healthy);
    // Allocation resumes: a fresh key earns a frame again and then hits.
    let (_, hit) = client.read_block(8).expect("read after recovery");
    assert!(!hit);
    let (_, hit) = client.read_block(8).expect("second read after recovery");
    assert!(hit, "allocation resumed after the breaker closed");
    assert!(client.stats().expect("stats").allocation_writes > alloc_before);

    client.quit().expect("quit");
    server.shutdown();
}

/// State-machine pin for the breaker's observability: driven over TCP
/// through Closed → Open → HalfOpen → Closed, the server emits exactly
/// one structured `node.breaker.transition` event per mode change — and
/// none for mode-preserving updates (healthy traffic, absorbed blips,
/// degraded requests that merely spend cooldown).
#[test]
fn breaker_transitions_emit_exactly_one_event_each_over_the_wire() {
    use std::sync::Arc;

    use sievestore_types::obs::{CapturingSink, FieldValue};

    fn transition(event: &sievestore_types::obs::Event) -> (String, String) {
        let field = |key: &str| match event.field(key) {
            Some(FieldValue::Str(s)) => s.to_string(),
            other => panic!("field {key} missing or non-string: {other:?}"),
        };
        (field("from"), field("to"))
    }

    let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(0x0B5E));
    let handle = faulty.handle();
    let cache = DataCache::new(faulty, PolicySpec::Aod, 64).expect("valid appliance");
    let config = NodeConfig {
        breaker_threshold: 3,
        breaker_cooldown: 4,
        ..NodeConfig::default()
    };
    let sink = Arc::new(CapturingSink::new());
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .sink(sink.clone())
        .serve(cache)
        .expect("bind ephemeral port");
    let mut client = NodeClient::connect_with(server.addr(), fast_client()).expect("connect");

    // Healthy traffic and a single absorbed blip preserve Closed: no
    // events.
    client.write_block(1, &block(0x11)).expect("healthy write");
    handle.fail_next(1);
    client.read_block(2).expect("retried read succeeds");
    assert!(
        sink.named("node.breaker.transition").is_empty(),
        "mode-preserving updates must not emit transition events"
    );

    // Threshold sustained failures: Closed → Open, exactly one event.
    handle.fail_next(3);
    client.read_block(3).expect("degraded read succeeds");
    let events = sink.named("node.breaker.transition");
    assert_eq!(events.len(), 1, "trip must emit exactly one event");
    assert_eq!(
        transition(&events[0]),
        ("healthy".into(), "degraded".into())
    );

    // Spending the rest of the cooldown stays Degraded until the last
    // tick flips to Probing: one more event, not one per request.
    for _ in 0..3 {
        client.read_block(1).expect("degraded read");
    }
    let events = sink.named("node.breaker.transition");
    assert_eq!(
        events.len(),
        2,
        "cooldown expiry must emit exactly one event"
    );
    assert_eq!(
        transition(&events[1]),
        ("degraded".into(), "probing".into())
    );

    // The successful probe heals the node: Probing → Healthy.
    client.read_block(1).expect("probe request");
    let events = sink.named("node.breaker.transition");
    assert_eq!(events.len(), 3, "recovery must emit exactly one event");
    assert_eq!(transition(&events[2]), ("probing".into(), "healthy".into()));
    assert_eq!(client.stats().expect("stats").mode, NodeMode::Healthy);

    // Healed traffic is quiet again.
    client.read_block(1).expect("healthy read");
    assert_eq!(sink.named("node.breaker.transition").len(), 3);

    client.quit().expect("quit");
    server.shutdown();
}

/// Requests that overrun the server deadline get a typed `Deadline`
/// error instead of stalling the connection.
#[test]
fn slow_backing_overruns_the_request_deadline() {
    let faulty = FaultInjectingBacking::new(MemBacking::new(), FaultPlan::new(1));
    let handle = faulty.handle();
    let cache = DataCache::new(faulty, PolicySpec::Aod, 16).expect("valid appliance");
    let config = NodeConfig {
        request_deadline: Duration::from_millis(10),
        breaker_threshold: 100, // keep the breaker out of this test
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)
        .expect("bind");
    let no_retry = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let mut client = NodeClient::connect_with(server.addr(), no_retry).expect("connect");

    handle.set_latency(Duration::from_millis(40));
    let err = client.read_block(5).expect_err("overrun must be reported");
    assert!(
        matches!(err, NodeError::Deadline(_)),
        "expected a deadline error, got {err:?}"
    );
    assert!(err.is_transient(), "deadline overruns are retryable");

    // Once the device speeds back up the same request succeeds.
    handle.set_latency(Duration::ZERO);
    let (data, _) = client.read_block(5).expect("fast read succeeds");
    assert_eq!(data, block(0));

    client.quit().expect("quit");
    server.shutdown();
}

/// `connect_timeout` plumbs through `TcpStream::connect_timeout`: dials
/// to a live node succeed within the budget, dials to a dead port fail
/// fast with a typed `Connect` error rather than hanging.
#[test]
fn connect_timeout_bounds_the_dial() {
    // A live node accepts within a tight budget.
    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(250)),
        ..ClientConfig::default()
    };
    let client = NodeClient::connect_with(server.addr(), config).expect("bounded dial succeeds");
    client.quit().expect("quit");
    server.shutdown();

    // A dead port (bound, then released) refuses: the bounded dial must
    // error quickly and with the typed connect variant, never hang.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe port");
        listener.local_addr().expect("probe addr")
    };
    let started = Instant::now();
    let err = NodeClient::connect_with(dead_addr, config)
        .expect_err("nothing listens on the released port");
    assert!(
        matches!(err, NodeError::Connect(_)),
        "expected a connect error, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "connect_timeout must bound the dial, took {:?}",
        started.elapsed()
    );
}

/// A write-back node must not strand dirty frames on shutdown: the
/// server flushes them (with retries past injected faults) so the data
/// survives in the backing file.
#[test]
fn shutdown_flushes_dirty_frames_despite_faults() {
    let dir = std::env::temp_dir().join(format!("sievestore-shutdown-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("node.img");
    {
        let inner = FileBacking::open(&path).expect("open backing file");
        let faulty = FaultInjectingBacking::new(inner, FaultPlan::new(2));
        let handle = faulty.handle();
        let cache = DataCache::new(faulty, PolicySpec::Aod, 64)
            .expect("valid appliance")
            .with_write_policy(WritePolicy::WriteBack);
        let server = NodeServerBuilder::new("127.0.0.1:0")
            .serve(cache)
            .expect("bind");
        let mut client = NodeClient::connect_with(server.addr(), fast_client()).expect("connect");

        // Allocating write-misses leave dirty frames; the backing file
        // has never seen this data.
        for key in 0..4u64 {
            client
                .write_block(key, &block(key as u8 + 1))
                .expect("write");
        }
        client.quit().expect("quit");

        // Sabotage the first two flush writes; shutdown's bounded retry
        // must still land every block.
        handle.fail_next(2);
        server.shutdown();
        assert!(handle.injected_errors() >= 2, "the sabotage actually fired");
    }
    // Reopen the file: every dirty frame reached stable storage.
    let reopened = FileBacking::open(&path).expect("reopen backing file");
    for key in 0..4u64 {
        use sievestore_node::BackingStore;
        assert_eq!(
            reopened.read_block(key).expect("read"),
            block(key as u8 + 1),
            "dirty block {key} was stranded by shutdown"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Dropping a server without calling shutdown() still flushes dirty
/// frames best-effort.
#[test]
fn drop_flushes_dirty_frames() {
    let dir = std::env::temp_dir().join(format!("sievestore-drop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("node.img");
    {
        let cache = DataCache::new(
            FileBacking::open(&path).expect("open backing file"),
            PolicySpec::Aod,
            16,
        )
        .expect("valid appliance")
        .with_write_policy(WritePolicy::WriteBack);
        let server = NodeServerBuilder::new("127.0.0.1:0")
            .serve(cache)
            .expect("bind");
        let mut client = NodeClient::connect(server.addr()).expect("connect");
        client.write_block(9, &block(0x99)).expect("write");
        client.quit().expect("quit");
        drop(server);
    }
    use sievestore_node::BackingStore;
    let reopened = FileBacking::open(&path).expect("reopen backing file");
    assert_eq!(reopened.read_block(9).expect("read"), block(0x99));
    std::fs::remove_dir_all(&dir).ok();
}

/// The server reaps idle connections; the client notices the dead socket
/// on its next request and transparently reconnects.
#[test]
fn idle_connections_are_reaped_and_clients_reconnect() {
    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).expect("valid appliance");
    let config = NodeConfig {
        idle_timeout: Some(Duration::from_millis(50)),
        ..NodeConfig::default()
    };
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .config(config)
        .serve(cache)
        .expect("bind");
    let mut client = NodeClient::connect_with(server.addr(), fast_client()).expect("connect");

    client.write_block(4, &block(0x44)).expect("write");
    // Let the server's idle timer reap the connection.
    thread::sleep(Duration::from_millis(200));
    // The next request rides a dead socket; the retry loop reconnects
    // and re-frames it without the caller noticing.
    let (data, _) = client.read_block(4).expect("read after idle reap");
    assert_eq!(data, block(0x44));
    assert!(
        client.reconnects() >= 1,
        "the client must have reconnected transparently"
    );

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn server_survives_malformed_frames() {
    use std::io::Write as _;

    let cache = DataCache::new(MemBacking::new(), PolicySpec::Aod, 16).expect("valid appliance");
    let server = NodeServerBuilder::new("127.0.0.1:0")
        .serve(cache)
        .expect("bind");

    // A raw connection sends garbage; the server replies with an error
    // frame (or closes) without taking the whole node down.
    {
        let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&[0xFF; 64]).expect("send garbage");
        // Whatever happens to this connection, the node must still serve:
    }
    let mut client = NodeClient::connect(server.addr()).expect("connect after garbage");
    client.write_block(1, &block(1)).expect("write");
    let (data, _) = client.read_block(1).expect("read");
    assert_eq!(data, block(1));
    client.quit().expect("quit");
    server.shutdown();
}
