//! End-to-end integration: the paper's qualitative results must hold on a
//! small ensemble simulated through the full crate stack.

use sievestore::PolicySpec;
use sievestore_sieve::TwoTierConfig;
use sievestore_sim::{
    ensemble_ideal_capture, ideal_top_selections, per_server_ideal_capture, simulate_many,
    SimConfig,
};
use sievestore_trace::{EnsembleConfig, Scale, SyntheticTrace};

fn small_ensemble() -> SyntheticTrace {
    // The real 13-server ensemble at a very coarse scale: keeps all the
    // cross-server structure while staying fast.
    let cfg = EnsembleConfig::msr_like().with_scale(Scale::new(4096).expect("nonzero"));
    SyntheticTrace::new(cfg).expect("valid ensemble")
}

struct Outcomes {
    ideal: sievestore_sim::SimResult,
    sieve_d: sievestore_sim::SimResult,
    sieve_c: sievestore_sim::SimResult,
    aod: sievestore_sim::SimResult,
    wmna: sievestore_sim::SimResult,
    rand_c: sievestore_sim::SimResult,
}

fn run_all(trace: &SyntheticTrace) -> Outcomes {
    let scale = trace.config().scale.denominator();
    let cfg = SimConfig::paper_16gb(scale);
    let (selections, _, _) = ideal_top_selections(trace, 0.01);
    let mut results = simulate_many(
        trace,
        vec![
            PolicySpec::IdealTop1 { selections },
            PolicySpec::SieveStoreD { threshold: 10 },
            PolicySpec::SieveStoreC(TwoTierConfig::paper_default().with_imct_entries(1 << 16)),
            PolicySpec::Aod,
            PolicySpec::Wmna,
            PolicySpec::RandSieveC {
                probability: 0.01,
                seed: 7,
            },
        ],
        &cfg,
    )
    .expect("valid policies");
    let rand_c = results.pop().expect("six results");
    let wmna = results.pop().expect("six results");
    let aod = results.pop().expect("six results");
    let sieve_c = results.pop().expect("six results");
    let sieve_d = results.pop().expect("six results");
    let ideal = results.pop().expect("six results");
    Outcomes {
        ideal,
        sieve_d,
        sieve_c,
        aod,
        wmna,
        rand_c,
    }
}

#[test]
fn paper_result_shapes_hold_end_to_end() {
    let trace = small_ensemble();
    let o = run_all(&trace);

    // Every policy saw the identical access stream.
    let accesses = o.ideal.total().accesses();
    for r in [&o.sieve_d, &o.sieve_c, &o.aod, &o.wmna, &o.rand_c] {
        assert_eq!(r.total().accesses(), accesses, "{}", r.policy);
    }

    // Result 1 (Fig. 5): sieved ensemble caches capture more than the best
    // unsieved one; the ideal bounds everything.
    let capture = |r: &sievestore_sim::SimResult, skip: &[usize]| r.mean_captured_fraction(skip);
    let best_unsieved = capture(&o.aod, &[]).max(capture(&o.wmna, &[]));
    let c_capture = capture(&o.sieve_c, &[]);
    let d_capture = capture(&o.sieve_d, &[0]);
    let ideal_capture = capture(&o.ideal, &[]);
    assert!(
        c_capture > best_unsieved,
        "SieveStore-C {c_capture} must beat best unsieved {best_unsieved}"
    );
    assert!(
        d_capture > best_unsieved * 0.9,
        "SieveStore-D {d_capture} should be competitive with unsieved {best_unsieved}"
    );
    // The day-by-day top-1% oracle is capacity-limited to ~1% of daily
    // blocks, while the 16 GB caches hold roughly twice that footprint in
    // this workload, so the practical sieves may exceed the oracle (the
    // paper observes the same for SieveStore-C). The oracle must still be
    // in the same band, not dominated outright.
    assert!(
        ideal_capture >= d_capture * 0.7,
        "ideal {ideal_capture} vs SieveStore-D {d_capture}"
    );
    // Random sieving stays well below real sieving (Fig. 5's point).
    assert!(
        capture(&o.rand_c, &[]) < c_capture,
        "RandSieve-C {} must trail SieveStore-C {c_capture}",
        capture(&o.rand_c, &[])
    );

    // Result 2 (Fig. 6): allocation-writes drop by orders of magnitude.
    let alloc = |r: &sievestore_sim::SimResult| r.total().total_allocation_writes();
    assert!(
        alloc(&o.sieve_c) * 20 < alloc(&o.wmna).min(alloc(&o.aod)),
        "sieve-C {} vs unsieved {}",
        alloc(&o.sieve_c),
        alloc(&o.wmna).min(alloc(&o.aod))
    );
    assert!(
        alloc(&o.sieve_d) * 20 < alloc(&o.wmna).min(alloc(&o.aod)),
        "sieve-D {} vs unsieved {}",
        alloc(&o.sieve_d),
        alloc(&o.wmna).min(alloc(&o.aod))
    );
    // WMNA allocates only read misses, so fewer than AOD.
    assert!(alloc(&o.wmna) < alloc(&o.aod));

    // Result 3 (Figs. 8-9): the sieved caches need fewer drive-minutes.
    let mean_occ = |r: &sievestore_sim::SimResult| {
        let s = r.occupancy.occupancy_series();
        s.iter().sum::<f64>() / s.len().max(1) as f64
    };
    assert!(mean_occ(&o.sieve_c) < mean_occ(&o.wmna));
    assert!(mean_occ(&o.sieve_d) < mean_occ(&o.wmna));
}

#[test]
fn sievestore_d_day_two_recovers_after_bootstrap() {
    let trace = small_ensemble();
    let o = run_all(&trace);
    // Day 0: no hits (empty cache). Day 1 onward: meaningful capture.
    assert_eq!(o.sieve_d.days[0].hits(), 0);
    let day1 = o.sieve_d.days[1].captured_fraction();
    assert!(day1 > 0.05, "day-1 capture {day1}");
}

#[test]
fn ensemble_beats_per_server_at_iso_capacity() {
    let trace = small_ensemble();
    let ensemble = ensemble_ideal_capture(&trace, 0.01);
    let per_server = per_server_ideal_capture(&trace, 0.01);
    // §5.3: ensemble-level capture dominates (the hot blocks concentrate
    // on different servers on different days).
    let e = ensemble.mean_fraction();
    let p = per_server.mean_fraction();
    assert!(
        e >= p - 0.01,
        "ensemble {e} should be at least per-server {p}"
    );
}

#[test]
fn allocation_writes_never_exceed_misses() {
    let trace = small_ensemble();
    let o = run_all(&trace);
    for r in [&o.sieve_c, &o.aod, &o.wmna, &o.rand_c] {
        let t = r.total();
        assert!(
            t.allocation_writes <= t.read_misses + t.write_misses,
            "{}: {} allocs vs {} misses",
            r.policy,
            t.allocation_writes,
            t.read_misses + t.write_misses
        );
    }
}
